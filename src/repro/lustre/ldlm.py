"""LDLM — Lustre's distributed extent lock manager (per OST object).

Semantics reproduced:

- modes ``PR`` (protected read, shared) and ``PW`` (protected write,
  exclusive against everything);
- *optimistic grant extension*: an uncontended request is widened to the
  largest gap around it (commonly ``[start, ∞)``), so a lone writer
  locks once and never again — this is why file-per-process is cheap;
- *synchronous revocation*: a conflicting request blocks while each
  conflicting holder receives a blocking callback, flushes, and cancels
  — this round-trip tax, repeated every operation when writers
  interleave within a stripe object, is the shared-file collapse.

The lock server lives with its OST; request/callback costs are charged
by the caller-supplied cost hooks so this module stays pure logic (and
unit-testable without a simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

INF = float("inf")

PR = "PR"
PW = "PW"


def _conflicts(mode_a: str, mode_b: str) -> bool:
    return mode_a == PW or mode_b == PW


@dataclass
class ExtentLock:
    owner: str
    mode: str
    start: int
    end: float  # exclusive; may be INF

    def overlaps(self, start: int, end: float) -> bool:
        return self.start < end and start < self.end


#: LDLM extent locks are page-granular: requests are widened outward to
#: 4 KiB boundaries, so *byte-disjoint but page-sharing* writers (the
#: io500-hard unaligned interleave) genuinely conflict on every op.
PAGE = 4096


class LockSpace:
    """Lock state for one OST object."""

    def __init__(self) -> None:
        self.locks: List[ExtentLock] = []
        self.revocations = 0
        self.grants = 0
        #: set after the first revocation: the server has seen contention
        #: on this object and stops optimistic whole-file extension,
        #: granting only the requested (page-rounded) range — Lustre's
        #: adaptive extent-grant policy.
        self.contended = False

    # ------------------------------------------------------------- queries
    def holder_covers(self, owner: str, mode: str, start: int, end: float) -> bool:
        """Does ``owner`` already hold a lock covering [start, end)?"""
        for lock in self.locks:
            if (
                lock.owner == owner
                and lock.start <= start
                and lock.end >= end
                and (lock.mode == PW or lock.mode == mode)
            ):
                return True
        return False

    def conflicting(self, owner: str, mode: str, start: int, end: float
                    ) -> List[ExtentLock]:
        return [
            lock
            for lock in self.locks
            if lock.owner != owner
            and lock.overlaps(start, end)
            and _conflicts(mode, lock.mode)
        ]

    # ------------------------------------------------------------- mutation
    def revoke(self, lock: ExtentLock) -> None:
        self.locks.remove(lock)
        self.revocations += 1
        self.contended = True

    def grant(self, owner: str, mode: str, start: int, end: float
              ) -> ExtentLock:
        """Grant [start, end), widened into the surrounding free gap while
        the object is uncontended (Lustre's optimistic extension), or
        exactly as requested once contention has been seen. Caller must
        have cleared conflicts first."""
        if self.contended:
            lo: float = start
            hi: float = end
        else:
            lo = 0
            hi = INF
        for lock in self.locks:
            if lock.owner == owner:
                continue
            if not _conflicts(mode, lock.mode):
                continue
            if lock.end <= start:
                lo = max(lo, lock.end)
            elif lock.start >= end:
                hi = min(hi, lock.start)
        # Merge with our own adjacent/overlapping same-mode locks.
        merged_start, merged_end = max(0, int(lo)), hi
        kept = []
        for lock in self.locks:
            if lock.owner == owner and lock.mode == mode and not (
                lock.end < merged_start or lock.start > merged_end
            ):
                merged_start = min(merged_start, lock.start)
                merged_end = max(merged_end, lock.end)
            else:
                kept.append(lock)
        self.locks = kept
        granted = ExtentLock(owner, mode, merged_start, merged_end)
        self.locks.append(granted)
        self.grants += 1
        return granted

    def drop_owner(self, owner: str) -> int:
        """Cancel all locks of ``owner`` (file close); returns count."""
        before = len(self.locks)
        self.locks = [l for l in self.locks if l.owner != owner]
        return before - len(self.locks)

    def check_invariants(self) -> None:
        """No two conflicting locks may overlap."""
        for i, a in enumerate(self.locks):
            for b in self.locks[i + 1 :]:
                if a.owner != b.owner and _conflicts(a.mode, b.mode):
                    assert not a.overlaps(b.start, b.end), (a, b)


def acquire(
    space: LockSpace,
    owner: str,
    mode: str,
    start: int,
    end: float,
    enqueue_cost: Callable[[], Generator],
    revoke_cost: Callable[[ExtentLock], Generator],
) -> Generator:
    """Task helper: ensure ``owner`` holds a covering lock.

    Fast path (already covered): free. Slow path: one enqueue RPC plus a
    synchronous revocation round per conflicting holder.

    Ranges are page-rounded outward, as LDLM extents are.
    """
    start = (start // PAGE) * PAGE
    if end is not INF and end != INF:
        end = -(-int(end) // PAGE) * PAGE
    if space.holder_covers(owner, mode, start, end):
        return False  # lock cache hit, no RPC
    yield from enqueue_cost()
    # Revocation is re-checked each round: while this requester waits for
    # one holder's callback, other requesters may revoke/grant concurrently.
    while True:
        conflicts = space.conflicting(owner, mode, start, end)
        if not conflicts:
            break
        lock = conflicts[0]
        yield from revoke_cost(lock)
        if lock in space.locks:
            space.revoke(lock)
    space.grant(owner, mode, start, end)
    return True
