"""Deterministic fault injection for the simulated DAOS stack.

Compose a :class:`FaultSchedule` (explicitly or seed-driven via
:meth:`FaultSchedule.random`), arm it on a booted cluster with a
:class:`FaultInjector`, and assert distributed-systems safety with
:mod:`repro.faults.invariants`. Same seed → byte-identical
:class:`EventTrace`. See DESIGN.md §6 for the fault model.
"""

from repro.faults.events import (
    CrashEngine,
    CrashReplica,
    DelayLink,
    ExcludeTarget,
    FaultEvent,
    FlakyLink,
    Heal,
    MediaRestore,
    MediaSlow,
    Partition,
    PartitionLeader,
    ReintegrateTarget,
    RestartEngine,
    RestartReplica,
)
from repro.faults.injector import EventTrace, FaultInjector
from repro.faults.invariants import (
    InvariantViolation,
    check_raft_safety,
    check_replica_consistency,
)
from repro.faults.schedule import FaultSchedule

__all__ = [
    "CrashEngine",
    "CrashReplica",
    "DelayLink",
    "EventTrace",
    "ExcludeTarget",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FlakyLink",
    "Heal",
    "InvariantViolation",
    "MediaRestore",
    "MediaSlow",
    "Partition",
    "PartitionLeader",
    "ReintegrateTarget",
    "RestartEngine",
    "RestartReplica",
    "check_raft_safety",
    "check_replica_consistency",
]
