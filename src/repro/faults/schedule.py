"""Fault schedules: explicit timelines and seed-driven random chaos.

A :class:`FaultSchedule` is an ordered list of ``(delay, event)`` pairs,
where ``delay`` is seconds after :meth:`FaultInjector.arm` (not absolute
simulated time — clusters spend boot time electing a leader and creating
the pool, and schedules should not depend on how long that took).

:meth:`FaultSchedule.random` draws a schedule from a named
:class:`~repro.sim.rng.RngStreams` stream, the same reproducibility
discipline every other stochastic component uses: the same seed always
yields the same schedule, and generating a schedule never perturbs the
draws of other consumers.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.faults import events as ev
from repro.sim.rng import RngStreams


class FaultSchedule:
    """An ordered fault timeline."""

    def __init__(self, entries: Sequence[Tuple[float, ev.FaultEvent]] = ()):
        self._entries: List[Tuple[float, ev.FaultEvent]] = list(entries)

    def at(self, delay: float, event: ev.FaultEvent) -> "FaultSchedule":
        """Append ``event`` at ``delay`` seconds after arming; chainable."""
        if delay < 0:
            raise SimulationError(f"fault delay must be >= 0, got {delay}")
        if not isinstance(event, ev.FaultEvent):
            raise SimulationError(f"not a FaultEvent: {event!r}")
        self._entries.append((float(delay), event))
        return self

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, ev.FaultEvent]]:
        return iter(self.sorted())

    def sorted(self) -> List[Tuple[float, ev.FaultEvent]]:
        """Entries by (delay, insertion order) — the arming order."""
        decorated = sorted(
            enumerate(self._entries), key=lambda pair: (pair[1][0], pair[0])
        )
        return [entry for _i, entry in decorated]

    @property
    def horizon(self) -> float:
        """Delay of the last event (0 for an empty schedule)."""
        return max((d for d, _e in self._entries), default=0.0)

    # ------------------------------------------------------------- random
    @classmethod
    def random(
        cls,
        rng: RngStreams,
        *,
        horizon: float,
        server_nodes: Sequence[str] = (),
        engine_ranks: Sequence[int] = (),
        target_ids: Sequence[int] = (),
        replica_ids: Sequence[int] = (),
        n_faults: int = 4,
        stream: str = "faults:schedule",
    ) -> "FaultSchedule":
        """Draw a liveness-safe random schedule from the ``stream`` RNG.

        The timeline is divided into ``n_faults`` slots; each slot holds
        one disruption and its recovery, and windows never overlap — so
        at most one fault is active at a time and a metadata quorum
        always eventually exists. Target exclusions are the exception:
        they persist (see the inline note), so workloads under random
        chaos must tolerate :class:`~repro.errors.DerDataLoss` on
        unreplicated objects.

        Only fault kinds whose id pools are provided are drawn: pass
        ``replica_ids=()`` to keep Raft untouched, etc.
        """
        kinds: List[str] = []
        if len(server_nodes) >= 2:
            kinds.append("partition")
        if engine_ranks:
            kinds.extend(["engine", "media"])
        if target_ids:
            kinds.append("target")
        if replica_ids:
            kinds.append("replica")
        if len(server_nodes) >= 2:
            kinds.append("flaky")
        if not kinds:
            raise SimulationError("no fault kinds available for random schedule")

        sched = cls()
        slot = horizon / max(1, n_faults)
        for i in range(n_faults):
            base = i * slot
            start = base + rng.uniform(stream, 0.05, 0.40) * slot
            duration = rng.uniform(stream, 0.20, 0.50) * slot
            stop = start + duration
            kind = kinds[rng.integer(stream, 0, len(kinds))]
            if kind == "partition":
                names = list(server_nodes)
                perm = [
                    names[j]
                    for j in rng.stream(stream).permutation(len(names))
                ]
                k = rng.integer(stream, 1, max(2, len(names) // 2 + 1))
                sched.at(
                    start,
                    ev.Partition(tuple(sorted(perm[:k])),
                                 tuple(sorted(perm[k:]))),
                )
                sched.at(stop, ev.Heal())
            elif kind == "flaky":
                names = list(server_nodes)
                a = rng.integer(stream, 0, len(names))
                b = rng.integer(stream, 0, len(names) - 1)
                if b >= a:
                    b += 1
                prob = rng.uniform(stream, 0.05, 0.30)
                sched.at(start, ev.FlakyLink(names[a], names[b], prob))
                sched.at(stop, ev.FlakyLink(names[a], names[b], 0.0))
            elif kind == "engine":
                rank = engine_ranks[rng.integer(stream, 0, len(engine_ranks))]
                sched.at(start, ev.CrashEngine(rank))
                sched.at(stop, ev.RestartEngine(rank))
            elif kind == "media":
                rank = engine_ranks[rng.integer(stream, 0, len(engine_ranks))]
                extra = rng.uniform(stream, 20e-6, 200e-6)
                factor = rng.uniform(stream, 0.1, 0.6)
                sched.at(start, ev.MediaSlow(rank, extra, factor))
                sched.at(stop, ev.MediaRestore(rank))
            elif kind == "target":
                # Exclude for the window, reintegrate at its end — even
                # with the workload writing throughout: the rebuild
                # engine resyncs the exclusion window before the target
                # serves reads again, so no stale replica can resurface.
                tid = target_ids[rng.integer(stream, 0, len(target_ids))]
                sched.at(start, ev.ExcludeTarget(tid))
                sched.at(stop, ev.ReintegrateTarget(tid))
            elif kind == "replica":
                # None = whoever leads at fire time: the interesting crash
                sched.at(start, ev.CrashReplica(None))
                sched.at(stop, ev.RestartReplica(None))
        return sched
