"""Raft safety invariants, checkable on any live cluster.

These are the classic properties from the Raft paper (§5.2, §5.3, §5.4,
Fig. 3), expressed over the observable state of
:class:`~repro.consensus.raft.RaftNode` instances:

- **Election safety** — at most one leader is ever elected per term
  (checked against ``leadership_history``, which records every win and
  survives crashes).
- **Log matching** — two logs agreeing on (index, term) agree on every
  earlier entry; checked pairwise over committed prefixes.
- **Leader completeness / no committed loss** — an entry committed
  anywhere appears in the log of every node whose log reaches it, with
  the same term and command.
- **Monotonic apply** — each state machine applies indices 1, 2, 3, …
  with no gap, skip, or repeat (restart rebuilds from scratch, so the
  record restarts at 1 — still monotonic).

Violations raise :class:`InvariantViolation`; the checkers double as the
assertion layer of the chaos harness (``tests/faults/harness.py``) and
the consensus test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ReproError


class InvariantViolation(ReproError):
    """A distributed-systems safety property was broken."""


def check_election_safety(nodes: Sequence) -> Dict[int, int]:
    """At most one node wins any term. Returns the term → winner map."""
    winners: Dict[int, int] = {}
    for node in nodes:
        for term, node_id in node.leadership_history:
            prev = winners.setdefault(term, node_id)
            if prev != node_id:
                raise InvariantViolation(
                    f"election safety: term {term} won by raft:{prev} "
                    f"and raft:{node_id}"
                )
    return winners


def check_log_matching(nodes: Sequence) -> None:
    """Committed prefixes agree pairwise on (term, command)."""
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            upto = min(a.commit_index, b.commit_index)
            for index in range(1, upto + 1):
                ea, eb = a.log[index], b.log[index]
                if (ea.term, ea.command) != (eb.term, eb.command):
                    raise InvariantViolation(
                        f"log matching: index {index} differs between "
                        f"raft:{a.node_id} ({ea.term}, {ea.command!r}) and "
                        f"raft:{b.node_id} ({eb.term}, {eb.command!r})"
                    )


def check_committed_entries_present(nodes: Sequence) -> int:
    """No committed entry is lost: the highest commit index reached by
    any node is covered by a quorum of logs that agree with the
    committer. Returns the cluster-wide max commit index."""
    if not nodes:
        return 0
    committer = max(nodes, key=lambda n: n.commit_index)
    high = committer.commit_index
    quorum = (len(nodes)) // 2 + 1
    for index in range(1, high + 1):
        entry = committer.log[index]
        holders = 0
        for node in nodes:
            if node.last_log_index >= index:
                other = node.log[index]
                if (other.term, other.command) == (entry.term, entry.command):
                    holders += 1
        if holders < quorum:
            raise InvariantViolation(
                f"committed entry {index} (term {entry.term}) present on "
                f"only {holders}/{len(nodes)} logs (quorum {quorum})"
            )
    return high


def check_applied_monotonic(nodes: Sequence) -> None:
    """Each state machine applied indices 1, 2, 3, … in order."""
    for node in nodes:
        expect = 0
        for index, _command in node.applied_results:
            expect += 1
            if index != expect:
                raise InvariantViolation(
                    f"raft:{node.node_id} applied index {index} where "
                    f"{expect} was expected (gap/repeat)"
                )


def check_commands_durable(
    nodes: Sequence, commands: Iterable
) -> None:
    """Every client-acknowledged command appears, in order, in the
    applied sequence of every node that has caught up to the cluster
    commit point (at-least-once: duplicates are permitted, loss and
    reordering are not)."""
    expected = list(commands)
    if not expected:
        return
    high = max(n.commit_index for n in nodes)
    for node in nodes:
        if node.commit_index < high:
            continue  # still catching up; covered by log matching
        applied = [cmd for _i, cmd in node.applied_results]
        cursor = 0
        for cmd in applied:
            if cursor < len(expected) and cmd == expected[cursor]:
                cursor += 1
        if cursor != len(expected):
            raise InvariantViolation(
                f"raft:{node.node_id} lost acknowledged command "
                f"{expected[cursor]!r} ({cursor}/{len(expected)} found)"
            )


def check_raft_safety(service, commands: Iterable = ()) -> Dict[str, int]:
    """Run every invariant over a ReplicatedService (or RaftCluster).

    Returns a deterministic summary (suitable for the chaos trace).
    """
    nodes = list(service.nodes)
    winners = check_election_safety(nodes)
    check_log_matching(nodes)
    high = check_committed_entries_present(nodes)
    check_applied_monotonic(nodes)
    check_commands_durable(nodes, commands)
    return {
        "terms_won": len(winners),
        "max_term": max(winners) if winners else 0,
        "max_commit": high,
        "live": sum(1 for n in nodes if n._alive),
    }


def check_replica_consistency(system) -> Dict[str, int]:
    """Storage-level invariant: redundancy groups agree wherever they
    should.

    For every object in every pool, members of a redundancy group that
    are UP (including a DOWNOUT slot's spare once its restore completed)
    must hold identical single values and identical extent bytes; for
    erasure-coded groups with every slot available, each stripe's parity
    must equal the XOR of its zero-padded data cells. Members that are
    DOWN, REBUILDING, or an un-restored spare are skipped —
    incompleteness there is exactly what the rebuild engine repairs.

    Raises :class:`InvariantViolation` on divergence; returns counters
    for the chaos trace.
    """
    from repro.daos.placement import PlacementMap, effective_groups
    from repro.daos.vos.extent import ExtentTree
    from repro.daos.vos.payload import Payload
    from repro.rebuild.state import UP

    def normalize(value):
        if isinstance(value, Payload):
            return value.materialize()
        return value

    def shard_view(vc, oid):
        """(dkey, akey) -> comparable content for one member's shard."""
        view = {}
        obj = vc.objects.get(oid)
        if obj is None:
            return view
        for dkey, akeys in obj.dkeys.items():
            for akey, value in akeys.items():
                if isinstance(value, ExtentTree):
                    if value.size:
                        view[(dkey, akey)] = (
                            "array", value.read(0, value.size).materialize()
                        )
                elif value.history:
                    epoch, latest = value.history[-1]
                    view[(dkey, akey)] = ("single", normalize(latest))
        return view

    counts = {"pools": 0, "objects": 0, "groups": 0}
    for pool_uuid in sorted(system._pool_maps):
        pool_map = system._pool_maps[pool_uuid]
        counts["pools"] += 1
        placement = PlacementMap(pool_map.n_targets)
        inventory = set()
        for engine in system.engines:
            for shard in engine.pools.get(pool_uuid, {}).values():
                for cont_uuid, vc in shard.containers.items():
                    for oid in vc.objects:
                        inventory.add((cont_uuid, oid))

        def vc_of(tid, cont_uuid):
            ref = system.target(tid)
            return ref.engine.container_shard(
                pool_uuid, ref.local_tid, cont_uuid
            )

        def slot_ready(orig, actual):
            if pool_map.state_of(actual) != UP:
                return False
            if actual == orig:
                return True
            status = pool_map.statuses.get(orig)
            return status is not None and status.rebuilt

        for cont_uuid, oid in sorted(
            inventory, key=lambda item: (item[0], item[1].hi, item[1].lo)
        ):
            counts["objects"] += 1
            layout = placement.layout(oid)
            effective = effective_groups(layout, pool_map.downout)
            for group, egroup in zip(layout.groups, effective):
                ready = [
                    actual
                    for orig, actual in zip(group, egroup)
                    if slot_ready(orig, actual)
                ]
                if len(ready) < 2:
                    continue
                counts["groups"] += 1
                if oid.oclass.is_ec:
                    _check_ec_group(
                        pool_uuid, oid, group, egroup, ready,
                        oid.oclass.ec_k, vc_of, cont_uuid, slot_ready,
                    )
                else:
                    base_tid = ready[0]
                    base = shard_view(vc_of(base_tid, cont_uuid), oid)
                    for tid in ready[1:]:
                        other = shard_view(vc_of(tid, cont_uuid), oid)
                        if other != base:
                            raise InvariantViolation(
                                f"replica divergence on {oid} "
                                f"(pool {pool_uuid}): target {tid} vs "
                                f"{base_tid}"
                            )
    return counts


def _check_ec_group(
    pool_uuid, oid, group, egroup, ready, k, vc_of, cont_uuid, slot_ready
):
    """Parity = XOR of zero-padded data cells, per (dkey, akey) stripe —
    only checkable when the whole group is available."""
    from repro.daos.vos.extent import ExtentTree

    if len(ready) < len(group):
        return  # degraded group: parity equation has unknowns
    actuals = [actual for _orig, actual in zip(group, egroup)]

    def trees(tid):
        out = {}
        vc = vc_of(tid, cont_uuid)
        obj = vc.objects.get(oid)
        if obj is None:
            return out
        for dkey, akeys in obj.dkeys.items():
            for akey, value in akeys.items():
                if isinstance(value, ExtentTree) and value.size:
                    out[(dkey, akey)] = value.read(0, value.size).materialize()
        return out

    member_data = [trees(tid) for tid in actuals]
    parity_data = member_data[k]  # first parity shard
    stripe_keys = set()
    for data in member_data:
        stripe_keys.update(data)
    for key in sorted(stripe_keys):
        parity = parity_data.get(key)
        if parity is None:
            raise InvariantViolation(
                f"EC group of {oid} (pool {pool_uuid}): stripe {key!r} "
                "has data but no parity"
            )
        acc = bytearray(len(parity))
        for ci in range(k):
            cell = member_data[ci].get(key, b"")
            for i, byte in enumerate(cell[: len(parity)]):
                acc[i] ^= byte
        if bytes(acc) != parity:
            raise InvariantViolation(
                f"EC parity mismatch on {oid} (pool {pool_uuid}), "
                f"stripe {key!r}"
            )
