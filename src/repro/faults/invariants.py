"""Raft safety invariants, checkable on any live cluster.

These are the classic properties from the Raft paper (§5.2, §5.3, §5.4,
Fig. 3), expressed over the observable state of
:class:`~repro.consensus.raft.RaftNode` instances:

- **Election safety** — at most one leader is ever elected per term
  (checked against ``leadership_history``, which records every win and
  survives crashes).
- **Log matching** — two logs agreeing on (index, term) agree on every
  earlier entry; checked pairwise over committed prefixes.
- **Leader completeness / no committed loss** — an entry committed
  anywhere appears in the log of every node whose log reaches it, with
  the same term and command.
- **Monotonic apply** — each state machine applies indices 1, 2, 3, …
  with no gap, skip, or repeat (restart rebuilds from scratch, so the
  record restarts at 1 — still monotonic).

Violations raise :class:`InvariantViolation`; the checkers double as the
assertion layer of the chaos harness (``tests/faults/harness.py``) and
the consensus test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ReproError


class InvariantViolation(ReproError):
    """A distributed-systems safety property was broken."""


def check_election_safety(nodes: Sequence) -> Dict[int, int]:
    """At most one node wins any term. Returns the term → winner map."""
    winners: Dict[int, int] = {}
    for node in nodes:
        for term, node_id in node.leadership_history:
            prev = winners.setdefault(term, node_id)
            if prev != node_id:
                raise InvariantViolation(
                    f"election safety: term {term} won by raft:{prev} "
                    f"and raft:{node_id}"
                )
    return winners


def check_log_matching(nodes: Sequence) -> None:
    """Committed prefixes agree pairwise on (term, command)."""
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            upto = min(a.commit_index, b.commit_index)
            for index in range(1, upto + 1):
                ea, eb = a.log[index], b.log[index]
                if (ea.term, ea.command) != (eb.term, eb.command):
                    raise InvariantViolation(
                        f"log matching: index {index} differs between "
                        f"raft:{a.node_id} ({ea.term}, {ea.command!r}) and "
                        f"raft:{b.node_id} ({eb.term}, {eb.command!r})"
                    )


def check_committed_entries_present(nodes: Sequence) -> int:
    """No committed entry is lost: the highest commit index reached by
    any node is covered by a quorum of logs that agree with the
    committer. Returns the cluster-wide max commit index."""
    if not nodes:
        return 0
    committer = max(nodes, key=lambda n: n.commit_index)
    high = committer.commit_index
    quorum = (len(nodes)) // 2 + 1
    for index in range(1, high + 1):
        entry = committer.log[index]
        holders = 0
        for node in nodes:
            if node.last_log_index >= index:
                other = node.log[index]
                if (other.term, other.command) == (entry.term, entry.command):
                    holders += 1
        if holders < quorum:
            raise InvariantViolation(
                f"committed entry {index} (term {entry.term}) present on "
                f"only {holders}/{len(nodes)} logs (quorum {quorum})"
            )
    return high


def check_applied_monotonic(nodes: Sequence) -> None:
    """Each state machine applied indices 1, 2, 3, … in order."""
    for node in nodes:
        expect = 0
        for index, _command in node.applied_results:
            expect += 1
            if index != expect:
                raise InvariantViolation(
                    f"raft:{node.node_id} applied index {index} where "
                    f"{expect} was expected (gap/repeat)"
                )


def check_commands_durable(
    nodes: Sequence, commands: Iterable
) -> None:
    """Every client-acknowledged command appears, in order, in the
    applied sequence of every node that has caught up to the cluster
    commit point (at-least-once: duplicates are permitted, loss and
    reordering are not)."""
    expected = list(commands)
    if not expected:
        return
    high = max(n.commit_index for n in nodes)
    for node in nodes:
        if node.commit_index < high:
            continue  # still catching up; covered by log matching
        applied = [cmd for _i, cmd in node.applied_results]
        cursor = 0
        for cmd in applied:
            if cursor < len(expected) and cmd == expected[cursor]:
                cursor += 1
        if cursor != len(expected):
            raise InvariantViolation(
                f"raft:{node.node_id} lost acknowledged command "
                f"{expected[cursor]!r} ({cursor}/{len(expected)} found)"
            )


def check_raft_safety(service, commands: Iterable = ()) -> Dict[str, int]:
    """Run every invariant over a ReplicatedService (or RaftCluster).

    Returns a deterministic summary (suitable for the chaos trace).
    """
    nodes = list(service.nodes)
    winners = check_election_safety(nodes)
    check_log_matching(nodes)
    high = check_committed_entries_present(nodes)
    check_applied_monotonic(nodes)
    check_commands_durable(nodes, commands)
    return {
        "terms_won": len(winners),
        "max_term": max(winners) if winners else 0,
        "max_commit": high,
        "live": sum(1 for n in nodes if n._alive),
    }
