"""Fault taxonomy: data-only event records.

Every fault the injector can apply is an immutable dataclass here, so a
:class:`~repro.faults.schedule.FaultSchedule` is pure data — printable,
comparable, hashable — and the deterministic trace can record ``repr(ev)``
verbatim. Interpretation (which hooks to poke on which layer) lives in
:class:`~repro.faults.injector.FaultInjector`.

The taxonomy mirrors the failure domains of a real DAOS deployment:

==================  =======================================================
fabric              :class:`Partition` / :class:`PartitionLeader` /
                    :class:`Heal`, :class:`DelayLink`, :class:`FlakyLink`
engine (process)    :class:`CrashEngine` / :class:`RestartEngine`
storage (pool map)  :class:`ExcludeTarget` / :class:`ReintegrateTarget`
metadata (Raft)     :class:`CrashReplica` / :class:`RestartReplica`
media (hardware)    :class:`MediaSlow` / :class:`MediaRestore`
==================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class FaultEvent:
    """Base class; concrete events are frozen dataclasses."""

    __slots__ = ()

    def describe(self) -> str:
        """Stable one-line text for the deterministic trace."""
        return repr(self)


# ------------------------------------------------------------------ fabric
@dataclass(frozen=True, repr=True)
class Partition(FaultEvent):
    """Cut the fabric between two groups of node names (both ways)."""

    side_a: Tuple[str, ...]
    side_b: Tuple[str, ...]


@dataclass(frozen=True)
class PartitionLeader(FaultEvent):
    """Isolate the node hosting the current Raft leader from the other
    *server* nodes (clients keep reaching every engine — only the
    metadata quorum is disturbed). A no-op if no leader exists when the
    event fires; that outcome is recorded in the trace."""


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove every active partition."""


@dataclass(frozen=True)
class DelayLink(FaultEvent):
    """Add one-way extra latency between two nodes (0 clears)."""

    src: str
    dst: str
    extra: float
    bidirectional: bool = True


@dataclass(frozen=True)
class FlakyLink(FaultEvent):
    """Drop each message between two nodes with probability ``drop_prob``
    (0 clears). Draws come from the injector's ``faults:drop`` RNG stream,
    so runs stay seed-deterministic."""

    src: str
    dst: str
    drop_prob: float
    bidirectional: bool = True


# ------------------------------------------------------------------ engines
@dataclass(frozen=True)
class CrashEngine(FaultEvent):
    """Crash the engine with this global rank (RPCs answer DER_TIMEDOUT)."""

    rank: int


@dataclass(frozen=True)
class RestartEngine(FaultEvent):
    rank: int


# ------------------------------------------------------------------ targets
@dataclass(frozen=True)
class ExcludeTarget(FaultEvent):
    """Mark a global target DOWN in the pool map (via the Raft service);
    ``permanent=True`` evicts it for good (DOWNOUT) and queues a rebuild
    onto its deterministic spare.

    ``pool_uuid=None`` means the cluster's boot pool.
    """

    tid: int
    pool_uuid: Optional[str] = None
    permanent: bool = False


@dataclass(frozen=True)
class ReintegrateTarget(FaultEvent):
    """Bring a DOWN target back: it enters REBUILDING (accepting writes,
    serving no reads) and flips UP once the background resync converges."""

    tid: int
    pool_uuid: Optional[str] = None


# ------------------------------------------------------------------ raft
@dataclass(frozen=True)
class CrashReplica(FaultEvent):
    """Crash a metadata-service Raft replica (``node_id=None`` crashes
    whoever is leader when the event fires — mid-commit leader loss)."""

    node_id: Optional[int] = None


@dataclass(frozen=True)
class RestartReplica(FaultEvent):
    """Restart a crashed replica (``node_id=None`` restarts every crashed
    replica — the safe closer for leader-crash events)."""

    node_id: Optional[int] = None


# ------------------------------------------------------------------ media
@dataclass(frozen=True)
class MediaSlow(FaultEvent):
    """Degrade one engine's media: extra per-access latency plus a
    bandwidth factor applied to its media read/write channels."""

    rank: int
    extra_latency: float = 50e-6
    bw_factor: float = 0.25


@dataclass(frozen=True)
class MediaRestore(FaultEvent):
    rank: int
