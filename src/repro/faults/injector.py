"""The fault injector: binds a schedule to a booted cluster.

The injector is the single place that knows which hook each fault event
maps to:

- fabric partitions / flaky links / latency → :class:`repro.network.fabric.Fabric`
  fault plane,
- engine crash/restart → :meth:`repro.daos.engine.Engine.crash` / ``restart``,
- target exclusion/reintegration → :meth:`repro.daos.system.DaosSystem.exclude_target`
  (a real Raft-replicated pool-map update, spawned as a task),
- Raft replica crash/restart → :meth:`repro.consensus.raft.RaftNode.crash` /
  ``restart``,
- slow media → the engine's ``media_latency_extra`` plus
  :meth:`repro.network.flows.FlowNetwork.set_link_capacity` on the media
  channels.

Every action is appended to an :class:`EventTrace` with its simulated
timestamp. Because the simulator is single-threaded and deterministic,
two runs with the same seed produce byte-identical traces — the
FoundationDB-style reproducibility contract the chaos harness asserts.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.faults import events as ev
from repro.faults.schedule import FaultSchedule


class EventTrace:
    """Append-only, timestamped text trace of a chaos run."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def note(self, time: float, text: str) -> None:
        self._lines.append(f"{time:.9f} {text}")

    @property
    def lines(self) -> List[str]:
        return list(self._lines)

    def as_bytes(self) -> bytes:
        return "\n".join(self._lines).encode("utf-8")

    def digest(self) -> str:
        return hashlib.sha256(self.as_bytes()).hexdigest()

    def __len__(self) -> int:
        return len(self._lines)


class FaultInjector:
    """Arms a :class:`FaultSchedule` against a booted cluster.

    ``cluster`` is duck-typed: it needs ``sim``, ``fabric``, ``daos``
    (with ``engines``, ``svc``, ``exclude_target``, ``reintegrate_target``),
    ``servers`` and ``rng`` — exactly what
    :class:`repro.cluster.builder.Cluster` provides.

    Schedule delays are relative to :meth:`arm` time.
    """

    def __init__(self, cluster, schedule: FaultSchedule,
                 trace: Optional[EventTrace] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.schedule = schedule
        self.trace = trace or EventTrace()
        self.rng = cluster.rng
        self._armed = False
        self._media_saved: Dict[int, Tuple[float, float, float]] = {}
        self._pending_tasks: List = []

    # ------------------------------------------------------------- arming
    def arm(self) -> "FaultInjector":
        """Schedule every event; returns self for chaining."""
        if self._armed:
            raise SimulationError("injector already armed")
        self._armed = True
        self.trace.note(self.sim.now, f"arm schedule ({len(self.schedule)} events)")
        for delay, event in self.schedule:
            self.sim.schedule(delay, self._fire, event)
        return self

    def note(self, text: str) -> None:
        """Workload-visible marker: timestamped line in the trace."""
        self.trace.note(self.sim.now, text)
        if self.sim.tracer is not None:
            self.sim.tracer.instant(text, "faults")

    # ------------------------------------------------------------- dispatch
    def _fire(self, event: ev.FaultEvent) -> None:
        handler = self._HANDLERS.get(type(event))
        if handler is None:
            raise SimulationError(f"no injector handler for {event!r}")
        outcome = handler(self, event)
        suffix = f" [{outcome}]" if outcome else ""
        self.trace.note(self.sim.now, f"inject {event.describe()}{suffix}")
        if self.sim.tracer is not None:
            # Mirror the injection onto the span timeline so chaos runs
            # show fault ↔ slowdown correlation in the same Perfetto view.
            self.sim.tracer.instant(
                f"inject {event.describe()}",
                "faults",
                attrs={"outcome": outcome} if outcome else None,
            )

    # -- fabric -----------------------------------------------------------
    def _do_partition(self, event: ev.Partition) -> str:
        self.cluster.fabric.partition(event.side_a, event.side_b)
        return ""

    def _do_partition_leader(self, event: ev.PartitionLeader) -> str:
        leader = self.cluster.daos.svc.leader()
        if leader is None:
            return "skipped: no leader"
        name = leader.endpoint.addr.name
        others = [s.name for s in self.cluster.servers if s.name != name]
        if not others:
            return "skipped: single server"
        self.cluster.fabric.partition([name], others)
        return f"isolated {name} (raft:{leader.node_id})"

    def _do_heal(self, _event: ev.Heal) -> str:
        self.cluster.fabric.heal()
        return ""

    def _do_delay_link(self, event: ev.DelayLink) -> str:
        self.cluster.fabric.set_extra_delay(
            event.src, event.dst, event.extra, event.bidirectional
        )
        return ""

    def _do_flaky_link(self, event: ev.FlakyLink) -> str:
        if event.drop_prob <= 0:
            rule = None
        else:
            prob = float(event.drop_prob)

            def rule(prob=prob) -> bool:
                return self.rng.uniform("faults:drop", 0.0, 1.0) < prob

        self.cluster.fabric.set_drop_rule(
            event.src, event.dst, rule, event.bidirectional
        )
        return ""

    # -- engines ----------------------------------------------------------
    def _do_crash_engine(self, event: ev.CrashEngine) -> str:
        self.cluster.daos.engines[event.rank].crash()
        return ""

    def _do_restart_engine(self, event: ev.RestartEngine) -> str:
        self.cluster.daos.engines[event.rank].restart()
        return ""

    # -- targets ----------------------------------------------------------
    def _pool_uuid(self, event) -> str:
        if event.pool_uuid is not None:
            return event.pool_uuid
        return self.cluster.pool.uuid

    def _do_exclude_target(self, event: ev.ExcludeTarget) -> str:
        uuid = self._pool_uuid(event)

        def task() -> Generator:
            version = yield from self.cluster.daos.exclude_target(
                uuid, event.tid, permanent=event.permanent
            )
            state = "DOWNOUT" if event.permanent else "DOWN"
            self.trace.note(
                self.sim.now,
                f"pool map v{version}: target {event.tid} {state}",
            )

        self._pending_tasks.append(
            self.sim.spawn(task(), f"faults:exclude:{event.tid}").defuse()
        )
        return "spawned"

    def _do_reintegrate_target(self, event: ev.ReintegrateTarget) -> str:
        uuid = self._pool_uuid(event)

        def task() -> Generator:
            version = yield from self.cluster.daos.reintegrate_target(
                uuid, event.tid
            )
            self.trace.note(
                self.sim.now,
                f"pool map v{version}: target {event.tid} REBUILDING",
            )

        self._pending_tasks.append(
            self.sim.spawn(task(), f"faults:reint:{event.tid}").defuse()
        )
        return "spawned"

    # -- raft -------------------------------------------------------------
    def _do_crash_replica(self, event: ev.CrashReplica) -> str:
        svc = self.cluster.daos.svc
        if event.node_id is not None:
            node = svc.nodes[event.node_id]
        else:
            node = svc.leader()
            if node is None:
                return "skipped: no leader"
        if not node._alive:
            return f"skipped: raft:{node.node_id} already down"
        node.crash()
        return f"crashed raft:{node.node_id}"

    def _do_restart_replica(self, event: ev.RestartReplica) -> str:
        svc = self.cluster.daos.svc
        if event.node_id is not None:
            victims = [svc.nodes[event.node_id]]
        else:
            victims = [n for n in svc.nodes if not n._alive]
        restarted = [n.node_id for n in victims if not n._alive]
        for node in victims:
            if not node._alive:
                node.restart()
        if not restarted:
            return "skipped: none down"
        return "restarted " + ",".join(f"raft:{i}" for i in restarted)

    # -- media ------------------------------------------------------------
    def _do_media_slow(self, event: ev.MediaSlow) -> str:
        if event.rank in self._media_saved:
            return f"skipped: engine {event.rank} already degraded"
        engine = self.cluster.daos.engines[event.rank]
        slot = engine.slot
        self._media_saved[event.rank] = (
            engine.media_latency_extra,
            slot.media_read.capacity,
            slot.media_write.capacity,
        )
        flownet = self.cluster.fabric.flownet
        engine.media_latency_extra = event.extra_latency
        flownet.set_link_capacity(
            slot.media_read, slot.media_read.capacity * event.bw_factor
        )
        flownet.set_link_capacity(
            slot.media_write, slot.media_write.capacity * event.bw_factor
        )
        return ""

    def _do_media_restore(self, event: ev.MediaRestore) -> str:
        saved = self._media_saved.pop(event.rank, None)
        if saved is None:
            return f"skipped: engine {event.rank} not degraded"
        engine = self.cluster.daos.engines[event.rank]
        slot = engine.slot
        extra, read_cap, write_cap = saved
        engine.media_latency_extra = extra
        flownet = self.cluster.fabric.flownet
        flownet.set_link_capacity(slot.media_read, read_cap)
        flownet.set_link_capacity(slot.media_write, write_cap)
        return ""

    _HANDLERS = {
        ev.Partition: _do_partition,
        ev.PartitionLeader: _do_partition_leader,
        ev.Heal: _do_heal,
        ev.DelayLink: _do_delay_link,
        ev.FlakyLink: _do_flaky_link,
        ev.CrashEngine: _do_crash_engine,
        ev.RestartEngine: _do_restart_engine,
        ev.ExcludeTarget: _do_exclude_target,
        ev.ReintegrateTarget: _do_reintegrate_target,
        ev.CrashReplica: _do_crash_replica,
        ev.RestartReplica: _do_restart_replica,
        ev.MediaSlow: _do_media_slow,
        ev.MediaRestore: _do_media_restore,
    }
