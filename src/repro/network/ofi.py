"""OFI-like messaging endpoints: tagged messages, RPC, and bulk RDMA.

DAOS uses Mercury/CART over libfabric; MPI uses its own transport. Both
reduce, for simulation purposes, to the three primitives provided here:

- :meth:`Endpoint.send` / :meth:`Endpoint.recv` — asynchronous message
  passing with latency + serialization delay,
- :class:`Rpc` / :class:`RpcServer` — request/response with a server-side
  handler task per request (handlers are generators and may perform
  arbitrary simulated work before replying),
- bulk transfers — RDMA-style byte movement expressed as fluid flows;
  the *caller* decides which links the flow crosses (client NIC, server
  NIC, storage target...), because only the storage layer knows the
  placement fan-out.

Message payloads are ordinary Python objects (they are never serialized
for real); ``nbytes`` tells the model how large the wire message would be.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.errors import NetworkError
from repro.network.fabric import Fabric, NodeAddr
from repro.sim.core import Simulator
from repro.sim.sync import Gate, Queue

_rpc_ids = itertools.count(1)


@dataclass
class Message:
    """A delivered message: sender endpoint name, tag, payload."""

    src: str
    tag: str
    payload: Any
    nbytes: int = 0


class Endpoint:
    """A named mailbox attached to a fabric node."""

    def __init__(self, fabric: Fabric, addr: NodeAddr, name: str):
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.addr = addr
        self.name = name
        self._inbox: Queue = Queue(self.sim)
        self._tagged: Dict[str, Queue] = {}
        fabric.register_endpoint(name, self)

    # -- send/recv ---------------------------------------------------------
    def send(self, dst: str, payload: Any, nbytes: int = 64, tag: str = "") -> None:
        """Asynchronously deliver ``payload`` to endpoint ``dst``.

        Delivery goes through :meth:`Fabric.transmit`, which applies the
        fault plane (partitions, flaky links, latency spikes).
        """
        target = self.fabric.endpoint(dst)
        if not isinstance(target, Endpoint):
            raise NetworkError(f"endpoint {dst!r} is not a message endpoint")
        message = Message(src=self.name, tag=tag, payload=payload, nbytes=nbytes)
        self.fabric.transmit(self.addr, target, message)

    def _deliver(self, message: Message) -> None:
        if message.tag:
            queue = self._tagged.get(message.tag)
            if queue is None:
                queue = self._tagged[message.tag] = Queue(self.sim)
            queue.put(message)
        else:
            self._inbox.put(message)

    def recv(self, tag: str = ""):
        """Awaitable for the next message (optionally on a specific tag)."""
        if tag:
            queue = self._tagged.get(tag)
            if queue is None:
                queue = self._tagged[tag] = Queue(self.sim)
            return queue.get()
        return self._inbox.get()

    def close(self) -> None:
        self.fabric.deregister_endpoint(self.name)


class RpcServer(Endpoint):
    """Endpoint that dispatches requests to registered handler generators.

    A handler has signature ``handler(src_name, **args) -> generator`` and
    its return value becomes the RPC reply. Handler exceptions are shipped
    back to the caller and re-raised there, mirroring how a real RPC stack
    surfaces remote faults.
    """

    def __init__(self, fabric: Fabric, addr: NodeAddr, name: str):
        super().__init__(fabric, addr, name)
        self._handlers: Dict[str, Callable[..., Generator]] = {}
        self._dispatcher = self.sim.spawn(self._dispatch_loop(), f"rpc:{name}")
        #: simulated per-request server CPU cost before the handler runs
        self.dispatch_overhead = 0.5e-6
        #: while set, requests are answered with ``factory()`` instead of
        #: being dispatched (crashed server: the reply stands in for the
        #: caller's RPC timeout, after ``unavailable_delay``)
        self._unavailable: Optional[Callable[[], Exception]] = None
        self.unavailable_delay = fabric.rpc_timeout

    def register(self, op: str, handler: Callable[..., Generator]) -> None:
        self._handlers[op] = handler

    def set_unavailable(
        self, error_factory: Optional[Callable[[], Exception]]
    ) -> None:
        """Mark the server down (``error_factory`` builds the per-request
        error) or back up (``None``)."""
        self._unavailable = error_factory

    def _dispatch_loop(self) -> Generator:
        while True:
            message = yield self.recv(tag="rpc-req")
            self.sim.spawn(
                self._serve(message), f"rpc:{self.name}:{message.payload['op']}"
            )

    def _serve(self, message: Message) -> Generator:
        request = message.payload
        op = request["op"]
        rpc_id = request["id"]
        reply_to = request["reply_to"]
        handler = self._handlers.get(op)
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            # Adopt the caller's span (shipped in the request) as parent so
            # the server-side work hangs off the client op in the trace.
            span = tracer.begin(
                f"rpc.{op}",
                "rpc",
                node=self.addr.name,
                parent_id=request.get("trace_ctx"),
                attrs={"src": message.src},
            )
        try:
            yield self.dispatch_overhead
            if self._unavailable is not None:
                yield self.unavailable_delay
                outcome = ("err", self._unavailable())
            elif handler is None:
                outcome = (
                    "err",
                    NetworkError(f"{self.name}: no handler for {op!r}"),
                )
            else:
                try:
                    task = self.sim.spawn(
                        handler(message.src, **request["args"]),
                        f"h:{self.name}:{op}",
                    )
                    if tracer is not None:
                        tracer.bind(task, span)
                    result = yield task
                    outcome = ("ok", result)
                except Exception as exc:  # noqa: BLE001 - shipped to caller
                    outcome = ("err", exc)
        finally:
            if tracer is not None:
                tracer.end(span)
        self.send(
            reply_to,
            {"id": rpc_id, "outcome": outcome},
            nbytes=request.get("rep_bytes", 256),
            tag="rpc-rep",
        )


class Rpc:
    """Client-side RPC helper bound to an :class:`Endpoint`."""

    def __init__(self, endpoint: Endpoint):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self._pending: Dict[int, Gate] = {}
        self._collector = self.sim.spawn(
            self._collect_loop(), f"rpc-cli:{endpoint.name}"
        )

    def _collect_loop(self) -> Generator:
        while True:
            message = yield self.endpoint.recv(tag="rpc-rep")
            gate = self._pending.pop(message.payload["id"], None)
            if gate is not None:
                gate.open(message.payload["outcome"])

    def call(
        self,
        dst: str,
        op: str,
        args: Optional[dict] = None,
        req_bytes: int = 256,
        rep_bytes: int = 256,
    ) -> Generator:
        """Task helper: ``result = yield from rpc.call(...)``."""
        rpc_id = next(_rpc_ids)
        gate = Gate(self.sim)
        self._pending[rpc_id] = gate
        request = {
            "op": op,
            "id": rpc_id,
            "args": args or {},
            "reply_to": self.endpoint.name,
            "rep_bytes": rep_bytes,
        }
        tracer = self.sim.tracer
        if tracer is not None:
            # Span propagation rides the payload dict; nbytes (the modelled
            # wire size) is untouched, so tracing cannot change timing.
            request["trace_ctx"] = tracer.current_span_id()
        self.endpoint.send(dst, request, nbytes=req_bytes, tag="rpc-req")
        status, value = yield gate
        if status == "err":
            raise value
        return value
