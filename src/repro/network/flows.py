"""Max-min fair fluid-flow bandwidth allocation.

Model
-----

- A :class:`Link` has a capacity in bytes/s (a NIC direction, a storage
  target's read or write media channel, an optional switch backplane).
- A :class:`Flow` traverses a set of links, each with a *consumption
  weight*: a flow running at rate ``r`` consumes ``r * w`` bytes/s of the
  capacity of each link ``l`` with weight ``w``. A stream striped evenly
  over ``k`` targets has weight ``1/k`` on each target link and weight
  ``1`` on its client NIC.
- A flow may carry an intrinsic *rate cap* modelling serial per-operation
  overhead (a stream issuing ``x``-byte ops with ``o`` seconds of fixed
  cost per op can never exceed ``x / o`` even on an idle network — the
  cap used by the stack is ``x / (x/r_link + o)`` folded in by callers).

Allocation is *equal-rate progressive filling*: all unfixed flows grow at
the same rate; when a link saturates, the flows crossing it are fixed;
when a flow reaches its cap, it is fixed; repeat. This is the classic
max-min fair allocation with heterogeneous consumption coefficients.

Reallocation happens only when the flow population changes (open/close/
cap change), so steady phases — exactly what bulk-I/O benchmarks produce —
cost almost nothing. In-flight :class:`Transfer` objects integrate their
remaining bytes across rate changes, so completion times are exact under
the fluid model.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.sim.core import Simulator
from repro.sim.sync import Gate

_EPS = 1e-9


class Link:
    """A capacity-constrained resource (bytes/s)."""

    __slots__ = ("name", "capacity", "_flows")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise NetworkError(f"link {name!r} needs positive capacity")
        self.name = name
        self.capacity = float(capacity)
        self._flows: Dict["Flow", float] = {}

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def utilization(self) -> float:
        """Fraction of capacity consumed by current allocations."""
        used = sum(flow.rate * weight for flow, weight in self._flows.items())
        return used / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.capacity:.3g}B/s x{len(self._flows)}>"


class Flow:
    """An active flow; ``rate`` is kept current by the network."""

    __slots__ = ("network", "links", "cap", "rate", "_transfers", "label")

    def __init__(
        self,
        network: "FlowNetwork",
        links: List[Tuple[Link, float]],
        cap: Optional[float],
        label: str = "",
    ):
        self.network = network
        self.links = links
        self.cap = cap
        self.rate = 0.0
        self._transfers: List["Transfer"] = []
        self.label = label

    def transfer(self, nbytes: float) -> "Transfer":
        """Start moving ``nbytes`` on this flow; yield the result to wait."""
        return self.network._start_transfer(self, nbytes)

    def set_cap(self, cap: Optional[float]) -> None:
        """Change the intrinsic rate cap and reallocate."""
        self.cap = cap
        self.network._reallocate()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flow {self.label or id(self)} rate={self.rate:.3g}>"


class Transfer:
    """In-flight byte movement on a flow; awaitable (yields completion time).

    Integrates the flow's rate across reallocations so the finish time is
    the exact fluid-model completion time.
    """

    __slots__ = ("flow", "remaining", "last_t", "gate", "_generation", "done")

    def __init__(self, flow: Flow, nbytes: float, sim: Simulator):
        self.flow = flow
        self.remaining = float(nbytes)
        self.last_t = sim.now
        self.gate = Gate(sim)
        self._generation = 0
        self.done = False

    def _subscribe(self, callback) -> None:
        self.gate._subscribe(callback)


class FlowNetwork:
    """Container of links and flows; performs max-min fair allocation."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._links: Dict[str, Link] = {}
        self._flows: List[Flow] = []
        self.reallocations = 0

    # -- topology ------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise NetworkError(f"duplicate link {name!r}")
        link = Link(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise NetworkError(f"unknown link {name!r}") from None

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity and reallocate (fault injection:
        degraded media channel, throttled NIC). In-flight transfers are
        synced under the old rates first, so completion times stay exact."""
        if capacity <= 0:
            raise NetworkError(
                f"link {link.name!r} needs positive capacity, got {capacity}"
            )
        link.capacity = float(capacity)
        self._reallocate()

    # -- flows ---------------------------------------------------------------
    def open(
        self,
        links: Iterable[Tuple[Link, float]],
        cap: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Register a new active flow and recompute the allocation."""
        link_list = [(link, float(weight)) for link, weight in links if weight > 0]
        if cap is not None and cap <= 0:
            raise NetworkError(f"flow cap must be positive, got {cap}")
        flow = Flow(self, link_list, cap, label)
        for link, weight in link_list:
            link._flows[flow] = weight
        self._flows.append(flow)
        self._reallocate()
        return flow

    def close(self, flow: Flow) -> None:
        """Deregister a flow (any unfinished transfers on it stall forever)."""
        if flow not in self._flows:
            return
        self._flows.remove(flow)
        for link, _w in flow.links:
            link._flows.pop(flow, None)
        flow.rate = 0.0
        self._reallocate()

    # -- transfers -------------------------------------------------------------
    def _start_transfer(self, flow: Flow, nbytes: float) -> Transfer:
        if nbytes < 0:
            raise NetworkError(f"negative transfer size {nbytes}")
        transfer = Transfer(flow, nbytes, self.sim)
        if nbytes == 0:
            transfer.done = True
            transfer.gate.open(self.sim.now)
            return transfer
        flow._transfers.append(transfer)
        self._schedule_completion(transfer)
        return transfer

    def _schedule_completion(self, transfer: Transfer) -> None:
        transfer._generation += 1
        generation = transfer._generation
        rate = transfer.flow.rate
        if rate <= _EPS:
            return  # stalled; a future reallocation reschedules
        delay = transfer.remaining / rate
        self.sim.schedule(delay, self._complete, transfer, generation)

    def _complete(self, transfer: Transfer, generation: int) -> None:
        if transfer.done or generation != transfer._generation:
            return  # stale event from before a reallocation
        # A matching generation means no reallocation has touched the flow
        # since this completion was scheduled, so the event time is exact.
        # (Recomputing the residual here instead would hit floating-point
        # underflow: at sim times ~1 s a sub-microsecond transfer leaves a
        # residual below the time resolution and the reschedule never
        # advances the clock.)
        transfer.remaining = 0.0
        transfer.last_t = self.sim.now
        transfer.done = True
        transfer.flow._transfers.remove(transfer)
        transfer.gate.open(self.sim.now)

    def _sync_transfer(self, transfer: Transfer) -> None:
        now = self.sim.now
        elapsed = now - transfer.last_t
        if elapsed > 0:
            transfer.remaining -= transfer.flow.rate * elapsed
            if transfer.remaining < 0:
                transfer.remaining = 0.0
            transfer.last_t = now

    # -- allocation --------------------------------------------------------------
    def _reallocate(self) -> None:
        """Equal-rate progressive filling over all active flows."""
        self.reallocations += 1
        # Bring transfers up to date under the *old* rates first.
        for flow in self._flows:
            for transfer in flow._transfers:
                self._sync_transfer(transfer)

        flows = self._flows
        n = len(flows)
        if n == 0:
            return

        remaining = {link: link.capacity for link in self._links.values()}
        denom: Dict[Link, float] = {}
        flow_links: Dict[Flow, List[Tuple[Link, float]]] = {}
        for flow in flows:
            flow.rate = 0.0
            flow_links[flow] = flow.links
            for link, weight in flow.links:
                denom[link] = denom.get(link, 0.0) + weight

        index = {flow: i for i, flow in enumerate(flows)}
        unfixed = set(range(n))
        level = 0.0  # common rate of all unfixed flows
        guard = 0
        while unfixed:
            guard += 1
            if guard > n + len(denom) + 2:
                raise NetworkError("progressive filling failed to converge")
            # Next link saturation point.
            delta_link = math.inf
            bottleneck: Optional[Link] = None
            for link, d in denom.items():
                if d > _EPS:
                    step = remaining[link] / d
                    if step < delta_link:
                        delta_link = step
                        bottleneck = link
            # Next cap crossing.
            delta_cap = math.inf
            for i in unfixed:
                cap = flows[i].cap
                if cap is not None:
                    headroom = cap - level
                    if headroom < delta_cap:
                        delta_cap = headroom
            delta = min(delta_link, delta_cap)
            if delta is math.inf:
                # No binding constraint at all (flows with no links/caps):
                # they are infinitely fast in the fluid model; pick a huge
                # rate so transfers are effectively instantaneous.
                for i in unfixed:
                    flows[i].rate = 1e18
                break
            if delta < 0:
                delta = 0.0
            level += delta
            for link in denom:
                remaining[link] -= delta * denom[link]

            newly_fixed: List[int] = []
            if delta_cap <= delta_link:
                for i in list(unfixed):
                    cap = flows[i].cap
                    if cap is not None and cap - level <= _EPS:
                        newly_fixed.append(i)
            if delta_link <= delta_cap and bottleneck is not None:
                for flow in bottleneck._flows:
                    idx = index[flow]
                    if idx in unfixed:
                        newly_fixed.append(idx)
            if not newly_fixed:
                # Numerical corner: force-fix the bottleneck link's flows.
                if bottleneck is not None:
                    for flow in bottleneck._flows:
                        idx = index[flow]
                        if idx in unfixed:
                            newly_fixed.append(idx)
                if not newly_fixed:
                    break
            for i in newly_fixed:
                if i not in unfixed:
                    continue
                unfixed.discard(i)
                flow = flows[i]
                flow.rate = level
                for link, weight in flow_links[flow]:
                    denom[link] -= weight
                    if denom[link] < _EPS:
                        denom[link] = 0.0

        # Reschedule all in-flight transfers under the new rates.
        for flow in flows:
            for transfer in flow._transfers:
                self._schedule_completion(transfer)

        # Per-edge utilisation timelines: every reallocation is a change
        # point of the piecewise-constant fluid rates, so sampling here
        # captures the exact utilisation curve of each link.
        metrics = self.sim.metrics
        if metrics is not None:
            now = self.sim.now
            for link in self._links.values():
                gauge = metrics.gauge(f"fabric.link.{link.name}.utilization")
                gauge.set(now, link.utilization())
