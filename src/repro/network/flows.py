"""Max-min fair fluid-flow bandwidth allocation.

Model
-----

- A :class:`Link` has a capacity in bytes/s (a NIC direction, a storage
  target's read or write media channel, an optional switch backplane).
- A :class:`Flow` traverses a set of links, each with a *consumption
  weight*: a flow running at rate ``r`` consumes ``r * w`` bytes/s of the
  capacity of each link ``l`` with weight ``w``. A stream striped evenly
  over ``k`` targets has weight ``1/k`` on each target link and weight
  ``1`` on its client NIC.
- A flow may carry an intrinsic *rate cap* modelling serial per-operation
  overhead (a stream issuing ``x``-byte ops with ``o`` seconds of fixed
  cost per op can never exceed ``x / o`` even on an idle network — the
  cap used by the stack is ``x / (x/r_link + o)`` folded in by callers).

Allocation is *equal-rate progressive filling*: all unfixed flows grow at
the same rate; when a link saturates, the flows crossing it are fixed;
when a flow reaches its cap, it is fixed; repeat. This is the classic
max-min fair allocation with heterogeneous consumption coefficients.

Solver engine
-------------

Reallocation is structured as register -> compute -> allocate (the psim
``BandwidthAllocator`` idiom): mutations (open/close/``set_cap``/
``set_link_capacity``) *register* dirty links and flows with the active
solver; :meth:`FlowNetwork._reallocate` asks the solver to *plan* the
set of flows whose rates may change, lets it *compute* new rates, then
*allocates* — syncing and rescheduling only the affected transfers and
sampling utilization gauges only for the affected links.

Two solvers implement the compute phase:

- :class:`ReferenceSolver` — the original pure-Python progressive
  filling over *all* flows and links.  It is the oracle for the
  differential test harness (``tests/network/test_solver_equivalence``)
  and the byte-stability anchor for the pinned seed figures.
- :class:`IncrementalSolver` (default) — tracks dirty links so a change
  re-solves only the connected component of flows touching changed
  links (flows in untouched components keep their rates *and* their
  scheduled completion events), and runs progressive filling as numpy
  vector operations over a flow x link incidence matrix.  The float
  semantics mirror the reference solver operation-for-operation (fold
  order of denominators, strict-< bottleneck tie-breaks, per-flow
  denominator decrements with intermediate clamping), so on workloads
  whose flow graph stays a single component — every IOR figure point —
  the two solvers agree byte-for-byte, not just within tolerance.

Select with ``REPRO_FLOW_SOLVER=reference|incremental`` (or the
``solver=`` argument) to bisect determinism suspects.

Reallocation happens only when the flow population changes (open/close/
cap change), so steady phases — exactly what bulk-I/O benchmarks produce —
cost almost nothing. In-flight :class:`Transfer` objects integrate their
remaining bytes across rate changes, so completion times are exact under
the fluid model.
"""

from __future__ import annotations

import heapq
import logging
import math
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetworkError
from repro.sim.core import Simulator
from repro.sim.sync import Gate

_EPS = 1e-9

#: rate assigned to flows with no binding constraint (no links, no cap):
#: effectively instantaneous in the fluid model.
_UNBOUNDED_RATE = 1e18

SOLVER_ENV = "REPRO_FLOW_SOLVER"

_LOG = logging.getLogger(__name__)


class Link:
    """A capacity-constrained resource (bytes/s)."""

    __slots__ = ("name", "capacity", "_flows")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise NetworkError(f"link {name!r} needs positive capacity")
        self.name = name
        self.capacity = float(capacity)
        self._flows: Dict["Flow", float] = {}

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def utilization(self) -> float:
        """Fraction of capacity consumed by current allocations."""
        used = sum(flow.rate * weight for flow, weight in self._flows.items())
        return used / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.capacity:.3g}B/s x{len(self._flows)}>"


class Flow:
    """An active flow; ``rate`` is kept current by the network."""

    __slots__ = ("network", "links", "cap", "rate", "_transfers", "label",
                 "_serial")

    def __init__(
        self,
        network: "FlowNetwork",
        links: List[Tuple[Link, float]],
        cap: Optional[float],
        label: str = "",
    ):
        self.network = network
        self.links = links
        self.cap = cap
        self.rate = 0.0
        self._transfers: List["Transfer"] = []
        self.label = label
        self._serial = 0  # assigned by FlowNetwork.open; orders solves

    def transfer(self, nbytes: float) -> "Transfer":
        """Start moving ``nbytes`` on this flow; yield the result to wait."""
        return self.network._start_transfer(self, nbytes)

    def set_cap(self, cap: Optional[float]) -> None:
        """Change the intrinsic rate cap and reallocate."""
        self.cap = cap
        self.network._solver.note_cap_changed(self)
        self.network._reallocate()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flow {self.label or id(self)} rate={self.rate:.3g}>"


class Transfer:
    """In-flight byte movement on a flow; awaitable (yields completion time).

    Integrates the flow's rate across reallocations so the finish time is
    the exact fluid-model completion time.
    """

    __slots__ = ("flow", "nbytes", "remaining", "last_t", "gate",
                 "_generation", "done")

    def __init__(self, flow: Flow, nbytes: float, sim: Simulator):
        self.flow = flow
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.last_t = sim.now
        self.gate = Gate(sim)
        self._generation = 0
        self.done = False

    def _subscribe(self, callback) -> None:
        self.gate._subscribe(callback)


# --------------------------------------------------------------------------
# Solvers
# --------------------------------------------------------------------------


class ReferenceSolver:
    """Global progressive filling, exactly as originally shipped.

    Every reallocation re-solves all flows over all links in pure
    Python.  Kept as the oracle for the differential equivalence suite
    and as the byte-stability anchor: its arithmetic (and therefore the
    pinned seed figures) must never drift.
    """

    name = "reference"

    def __init__(self, net: "FlowNetwork"):
        self.net = net

    # -- register phase: global solver ignores dirtiness ------------------
    def note_link_added(self, link: Link) -> None:
        pass

    def note_link_dirty(self, link: Link) -> None:
        pass

    def note_flow_added(self, flow: Flow) -> None:
        pass

    def note_flow_removed(self, flow: Flow) -> None:
        pass

    def note_cap_changed(self, flow: Flow) -> None:
        pass

    def plan(self) -> Tuple[List[Flow], List[Link]]:
        net = self.net
        if not net._flows:
            return [], []
        return net._flows, list(net._links.values())

    # -- compute phase ----------------------------------------------------
    def compute(self, flows: Sequence[Flow]) -> None:
        net = self.net
        n = len(flows)
        remaining = {link: link.capacity for link in net._links.values()}
        denom: Dict[Link, float] = {}
        flow_links: Dict[Flow, List[Tuple[Link, float]]] = {}
        for flow in flows:
            flow.rate = 0.0
            flow_links[flow] = flow.links
            for link, weight in flow.links:
                denom[link] = denom.get(link, 0.0) + weight

        index = {flow: i for i, flow in enumerate(flows)}
        unfixed = set(range(n))
        level = 0.0  # common rate of all unfixed flows
        guard = 0
        while unfixed:
            guard += 1
            if guard > n + len(denom) + 2:
                raise NetworkError("progressive filling failed to converge")
            # Next link saturation point.
            delta_link = math.inf
            bottleneck: Optional[Link] = None
            for link, d in denom.items():
                if d > _EPS:
                    step = remaining[link] / d
                    if step < delta_link:
                        delta_link = step
                        bottleneck = link
            # Next cap crossing.
            delta_cap = math.inf
            for i in unfixed:
                cap = flows[i].cap
                if cap is not None:
                    headroom = cap - level
                    if headroom < delta_cap:
                        delta_cap = headroom
            delta = min(delta_link, delta_cap)
            if delta is math.inf:
                # No binding constraint at all (flows with no links/caps):
                # they are infinitely fast in the fluid model; pick a huge
                # rate so transfers are effectively instantaneous.
                for i in unfixed:
                    flows[i].rate = _UNBOUNDED_RATE
                break
            if delta < 0:
                delta = 0.0
            level += delta
            for link in denom:
                remaining[link] -= delta * denom[link]

            newly_fixed: List[int] = []
            if delta_cap <= delta_link:
                for i in list(unfixed):
                    cap = flows[i].cap
                    if cap is not None and cap - level <= _EPS:
                        newly_fixed.append(i)
            if delta_link <= delta_cap and bottleneck is not None:
                for flow in bottleneck._flows:
                    idx = index[flow]
                    if idx in unfixed:
                        newly_fixed.append(idx)
            if not newly_fixed:
                # Numerical corner: force-fix the bottleneck link's flows.
                if bottleneck is not None:
                    for flow in bottleneck._flows:
                        idx = index[flow]
                        if idx in unfixed:
                            newly_fixed.append(idx)
                if not newly_fixed:
                    net._note_forced_exit(level, len(unfixed))
                    break
            for i in newly_fixed:
                if i not in unfixed:
                    continue
                unfixed.discard(i)
                flow = flows[i]
                flow.rate = level
                for link, weight in flow_links[flow]:
                    denom[link] -= weight
                    if denom[link] < _EPS:
                        denom[link] = 0.0


class IncrementalSolver:
    """Dirty-link incremental, numpy-vectorized progressive filling.

    Register phase: mutations mark links/flows dirty and keep a dense
    flow x link incidence matrix up to date (rows are flow slots, columns
    are link slots; both grow geometrically and freed rows are reused).

    Compute phase: the dirty set is expanded to the connected component
    of flows reachable through shared links; only that component is
    re-solved.  Within the component the progressive-filling loop runs
    on numpy vectors: link saturation steps, cap crossings and
    remaining-capacity updates are whole-array operations, while the
    per-flow denominator decrements replay the reference solver's exact
    subtract-then-clamp sequence so the floats match bit-for-bit.

    Flows outside the component keep their previous rates and their
    already-scheduled completion events — the allocate phase never
    touches them.
    """

    name = "incremental"

    _INITIAL = 64

    def __init__(self, net: "FlowNetwork"):
        self.net = net
        self._dirty_links: set = set()
        self._dirty_flows: set = set()
        # dense incidence matrix: rows = flow slots, cols = link slots
        self._W = np.zeros((self._INITIAL, self._INITIAL))
        self._caps = np.full(self._INITIAL, np.inf)
        self._serials = np.zeros(self._INITIAL, dtype=np.int64)
        self._linkcap = np.zeros(self._INITIAL)
        self._row_of: Dict[Flow, int] = {}
        self._flow_of_row: List[Optional[Flow]] = [None] * self._INITIAL
        self._free_rows: List[int] = []
        self._nrows = 0
        self._col_of: Dict[Link, int] = {}
        self._link_of_col: List[Link] = []
        # per-flow compact rows: global col ids + matching weights, both
        # as numpy arrays (vector decrements) and as python pairs (the
        # scalar fast path for the common few-links-per-flow case)
        self._cols_of: Dict[Flow, np.ndarray] = {}
        self._wts_of: Dict[Flow, np.ndarray] = {}
        self._cells_of: Dict[Flow, List[Tuple[int, float]]] = {}
        # rows/cols of the last plan(), consumed by the same-call compute()
        self._plan_rows = np.empty(0, dtype=np.intp)
        self._plan_cols = np.empty(0, dtype=np.intp)

    # -- registry growth --------------------------------------------------
    def _grow_rows(self) -> None:
        old = self._W
        grown = np.zeros((old.shape[0] * 2, old.shape[1]))
        grown[: old.shape[0]] = old
        self._W = grown
        caps = np.full(grown.shape[0], np.inf)
        caps[: self._caps.shape[0]] = self._caps
        self._caps = caps
        serials = np.zeros(grown.shape[0], dtype=np.int64)
        serials[: self._serials.shape[0]] = self._serials
        self._serials = serials
        self._flow_of_row.extend([None] * (grown.shape[0] - len(self._flow_of_row)))

    def _grow_cols(self) -> None:
        old = self._W
        grown = np.zeros((old.shape[0], old.shape[1] * 2))
        grown[:, : old.shape[1]] = old
        self._W = grown
        linkcap = np.zeros(grown.shape[1])
        linkcap[: self._linkcap.shape[0]] = self._linkcap
        self._linkcap = linkcap

    # -- register phase ---------------------------------------------------
    def note_link_added(self, link: Link) -> None:
        col = len(self._link_of_col)
        if col >= self._W.shape[1]:
            self._grow_cols()
        self._col_of[link] = col
        self._link_of_col.append(link)
        self._linkcap[col] = link.capacity

    def note_link_dirty(self, link: Link) -> None:
        self._linkcap[self._col_of[link]] = link.capacity
        self._dirty_links.add(link)

    def note_flow_added(self, flow: Flow) -> None:
        if self._free_rows:
            row = self._free_rows.pop()
        else:
            row = self._nrows
            self._nrows += 1
            if row >= self._W.shape[0]:
                self._grow_rows()
        self._row_of[flow] = row
        # Accumulate weights per column in first-occurrence order (callers
        # pre-aggregate per link, so this is normally a straight copy).
        cols: List[int] = []
        wts: List[float] = []
        pos: Dict[int, int] = {}
        for link, weight in flow.links:
            c = self._col_of[link]
            at = pos.get(c)
            if at is None:
                pos[c] = len(cols)
                cols.append(c)
                wts.append(weight)
            else:
                wts[at] += weight
        col_arr = np.asarray(cols, dtype=np.intp)
        wt_arr = np.asarray(wts)
        self._cols_of[flow] = col_arr
        self._wts_of[flow] = wt_arr
        self._cells_of[flow] = list(zip(cols, wts))
        if len(cols):
            self._W[row, col_arr] = wt_arr
        self._caps[row] = np.inf if flow.cap is None else flow.cap
        self._serials[row] = flow._serial
        self._flow_of_row[row] = flow
        self._dirty_flows.add(flow)

    def note_flow_removed(self, flow: Flow) -> None:
        row = self._row_of.pop(flow, None)
        if row is None:
            return
        cols = self._cols_of.pop(flow)
        self._wts_of.pop(flow)
        self._cells_of.pop(flow)
        if cols.size:
            self._W[row, cols] = 0.0
        self._caps[row] = np.inf
        self._serials[row] = 0
        self._flow_of_row[row] = None
        self._free_rows.append(row)
        self._dirty_flows.discard(flow)
        for link, _w in flow.links:
            self._dirty_links.add(link)

    def note_cap_changed(self, flow: Flow) -> None:
        row = self._row_of.get(flow)
        if row is None:
            return
        self._caps[row] = np.inf if flow.cap is None else flow.cap
        self._dirty_flows.add(flow)

    # -- plan: expand dirtiness to the connected component ----------------
    def plan(self) -> Tuple[List[Flow], List[Link]]:
        if not self._dirty_links and not self._dirty_flows:
            return [], []
        nr = self._nrows
        nc = len(self._link_of_col)
        row_of = self._row_of
        fmask = np.zeros(nr, dtype=bool)
        lmask = np.zeros(nc, dtype=bool)
        for flow in self._dirty_flows:
            fmask[row_of[flow]] = True
        gauge_extras = [l for l in self._dirty_links if not l._flows]
        for link in self._dirty_links:
            lmask[self._col_of[link]] = True
        self._dirty_links.clear()
        self._dirty_flows.clear()
        if not nr:
            return [], []
        # Fixpoint expansion over the incidence matrix: freed rows are
        # zeroed, so only live flows join the component.
        Wv = self._W[:nr, :nc]
        count = -1
        while True:
            np.logical_or(fmask, Wv @ lmask > 0.0, out=fmask)
            np.logical_or(lmask, fmask @ Wv > 0.0, out=lmask)
            grown = int(fmask.sum()) + int(lmask.sum())
            if grown == count:
                break
            count = grown
        rows = np.nonzero(fmask)[0]
        if not rows.size:
            return [], []
        rows = rows[np.argsort(self._serials[rows])]
        flow_of_row = self._flow_of_row
        flows = [flow_of_row[r] for r in rows]
        # Links in first-touch order over the serial-sorted flows: this is
        # the reference solver's denominator-dict insertion order, which
        # the bottleneck argmin tie-break depends on.
        if len(flows) == 1:
            cols = self._cols_of[flows[0]]
        else:
            allc = np.concatenate([self._cols_of[f] for f in flows])
            # first-occurrence position of every col: reversed fancy
            # assignment makes the earliest write win
            first = np.full(nc, -1, dtype=np.intp)
            first[allc[::-1]] = np.arange(allc.size - 1, -1, -1)
            hit = np.nonzero(first >= 0)[0]
            cols = hit[np.argsort(first[hit])]
        link_of_col = self._link_of_col
        links = [link_of_col[c] for c in cols]
        self._plan_rows = rows
        self._plan_cols = cols
        links.extend(gauge_extras)
        return flows, links

    # -- compute phase ----------------------------------------------------
    def compute(self, flows: Sequence[Flow]) -> None:
        n = len(flows)
        cols_of = self._cols_of
        rows = self._plan_rows
        cols = self._plan_cols
        m = len(cols)
        inf = math.inf
        if m:
            W = self._W[np.ix_(rows, cols)]
            if n > 1:
                # accumulate folds rows sequentially, matching the
                # reference's per-link flow-order summation rounding
                denom = np.add.accumulate(W, axis=0)[-1]
            else:
                denom = W[0].copy()
            remaining = self._linkcap[cols].astype(float)
            # global col id -> local col position, for per-flow decrements
            local = np.empty(len(self._link_of_col), dtype=np.intp)
            local[cols] = np.arange(m)
        else:
            W = denom = remaining = np.empty(0)
            local = None
        # working copy: rows go to +inf as their flows fix, so the plain
        # (C fast-path) caps.min() is exactly the masked min-over-unfixed,
        # and `caps - level <= _EPS` self-excludes fixed rows
        caps = self._caps[rows]
        rates = np.zeros(n)
        unfixed = np.ones(n, dtype=bool)
        step = np.empty(m) if m else None
        cells_of = self._cells_of
        n_unfixed = n
        level = 0.0
        guard = 0
        while n_unfixed:
            guard += 1
            if guard > n + m + 2:
                raise NetworkError("progressive filling failed to converge")
            if m:
                step.fill(inf)
                np.divide(remaining, denom, out=step, where=denom > _EPS)
                j = int(step.argmin())  # first minimum: dict-order tie-break
                delta_link = float(step[j])
                bottleneck = j if delta_link != inf else None
            else:
                delta_link = inf
                bottleneck = None
            # min over unfixed of (cap - level): rounding is monotone, so
            # subtracting after the min matches the reference's per-flow
            # subtract-then-min float result exactly
            delta_cap = float(caps.min()) - level
            delta = delta_link if delta_link < delta_cap else delta_cap
            if delta == inf:
                rates[unfixed] = _UNBOUNDED_RATE
                break
            if delta < 0:
                delta = 0.0
            level += delta
            if m:
                remaining -= delta * denom

            parts: List[np.ndarray] = []
            if delta_cap <= delta_link:
                parts.append(np.nonzero(caps - level <= _EPS)[0])
            if delta_link <= delta_cap and bottleneck is not None:
                hit = np.nonzero(unfixed & (W[:, bottleneck] > 0.0))[0]
                if parts and parts[0].size and hit.size:
                    hit = hit[~np.isin(hit, parts[0])]
                parts.append(hit)
            newly = (
                np.concatenate(parts) if len(parts) > 1
                else parts[0] if parts
                else np.empty(0, dtype=np.intp)
            )
            if newly.size == 0:
                if bottleneck is not None:
                    newly = np.nonzero(unfixed & (W[:, bottleneck] > 0.0))[0]
                if newly.size == 0:
                    self.net._note_forced_exit(level, n_unfixed)
                    break
            if newly.size == n_unfixed:
                # Terminal batch: every remaining flow fixes at this level,
                # so the interleaved denominator decrements (which only
                # matter for later iterations) can be skipped wholesale.
                rates[newly] = level
                break
            for i in newly.tolist():
                if not unfixed[i]:
                    continue
                unfixed[i] = False
                n_unfixed -= 1
                rates[i] = level
                caps[i] = inf
                cells = cells_of[flows[i]]
                if len(cells) <= 8:
                    # scalar path: flows touch a handful of links, and
                    # python float ops beat fancy indexing at that size
                    for gc, wt in cells:
                        lc = local[gc]
                        val = denom[lc] - wt
                        denom[lc] = 0.0 if val < _EPS else val
                else:
                    gcols = cols_of[flows[i]]
                    lc = local[gcols]
                    vals = denom[lc] - self._wts_of[flows[i]]
                    vals[vals < _EPS] = 0.0
                    denom[lc] = vals

        for i, flow in enumerate(flows):
            flow.rate = float(rates[i])


_SOLVERS = {
    ReferenceSolver.name: ReferenceSolver,
    IncrementalSolver.name: IncrementalSolver,
}


class FlowNetwork:
    """Container of links and flows; performs max-min fair allocation.

    ``solver`` selects the allocation engine (``"reference"`` or
    ``"incremental"``); when omitted, the ``REPRO_FLOW_SOLVER``
    environment variable decides, defaulting to ``"incremental"``.
    """

    def __init__(self, sim: Simulator, solver: Optional[str] = None):
        self.sim = sim
        self._links: Dict[str, Link] = {}
        self._flows: List[Flow] = []
        self.reallocations = 0
        #: count of progressive-filling runs that hit the non-convergence
        #: fallback (see :meth:`_note_forced_exit`)
        self.forced_exits = 0
        #: cumulative wall-clock seconds spent in reallocation
        self.solver_seconds = 0.0
        #: cumulative flows re-solved across reallocations (== flows *
        #: reallocations for the reference solver; less when the
        #: incremental solver skips untouched components)
        self.solved_flows = 0
        self._next_serial = 0
        name = solver or os.environ.get(SOLVER_ENV, "") or "incremental"
        try:
            self._solver = _SOLVERS[name](self)
        except KeyError:
            raise NetworkError(
                f"unknown flow solver {name!r} "
                f"(valid: {', '.join(sorted(_SOLVERS))})"
            ) from None

    @property
    def solver_name(self) -> str:
        return self._solver.name

    # -- topology ------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        if name in self._links:
            raise NetworkError(f"duplicate link {name!r}")
        link = Link(name, capacity)
        self._links[name] = link
        self._solver.note_link_added(link)
        return link

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise NetworkError(f"unknown link {name!r}") from None

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity and reallocate (fault injection:
        degraded media channel, throttled NIC). In-flight transfers are
        synced under the old rates first, so completion times stay exact."""
        if capacity <= 0:
            raise NetworkError(
                f"link {link.name!r} needs positive capacity, got {capacity}"
            )
        link.capacity = float(capacity)
        self._solver.note_link_dirty(link)
        self._reallocate()

    # -- flows ---------------------------------------------------------------
    def open(
        self,
        links: Iterable[Tuple[Link, float]],
        cap: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Register a new active flow and recompute the allocation."""
        link_list = [(link, float(weight)) for link, weight in links if weight > 0]
        if cap is not None and cap <= 0:
            raise NetworkError(f"flow cap must be positive, got {cap}")
        flow = Flow(self, link_list, cap, label)
        self._next_serial += 1
        flow._serial = self._next_serial
        for link, weight in link_list:
            link._flows[flow] = weight
        self._flows.append(flow)
        self._solver.note_flow_added(flow)
        self._reallocate()
        return flow

    def close(self, flow: Flow) -> None:
        """Deregister a flow (any unfinished transfers on it stall forever)."""
        if flow not in self._flows:
            return
        self._flows.remove(flow)
        for link, _w in flow.links:
            link._flows.pop(flow, None)
        flow.rate = 0.0
        self._solver.note_flow_removed(flow)
        self._reallocate()

    # -- transfers -------------------------------------------------------------
    def _start_transfer(self, flow: Flow, nbytes: float) -> Transfer:
        if nbytes < 0:
            raise NetworkError(f"negative transfer size {nbytes}")
        transfer = Transfer(flow, nbytes, self.sim)
        if nbytes == 0:
            transfer.done = True
            transfer.gate.open(self.sim.now)
            return transfer
        flow._transfers.append(transfer)
        metrics = self.sim.metrics
        if metrics is not None:
            # Progress/liveness pair for the stall watchdog: inflight
            # stays >0 across a close() that strands transfers, which is
            # exactly the silent-hang signature the watchdog looks for.
            metrics.gauge("fabric.xfer.inflight").add(self.sim.now, 1)
        self._schedule_completion(transfer)
        return transfer

    def _schedule_completion(self, transfer: Transfer) -> None:
        transfer._generation += 1
        generation = transfer._generation
        rate = transfer.flow.rate
        if rate <= _EPS:
            return  # stalled; a future reallocation reschedules
        delay = transfer.remaining / rate
        self.sim.schedule(delay, self._complete, transfer, generation)

    def _complete(self, transfer: Transfer, generation: int) -> None:
        if transfer.done or generation != transfer._generation:
            return  # stale event from before a reallocation
        # A matching generation means no reallocation has touched the flow
        # since this completion was scheduled, so the event time is exact.
        # (Recomputing the residual here instead would hit floating-point
        # underflow: at sim times ~1 s a sub-microsecond transfer leaves a
        # residual below the time resolution and the reschedule never
        # advances the clock.)
        transfer.remaining = 0.0
        transfer.last_t = self.sim.now
        transfer.done = True
        transfer.flow._transfers.remove(transfer)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.incr("fabric.xfer.bytes", transfer.nbytes)
            metrics.gauge("fabric.xfer.inflight").add(self.sim.now, -1)
        transfer.gate.open(self.sim.now)

    def _sync_transfer(self, transfer: Transfer) -> None:
        now = self.sim.now
        elapsed = now - transfer.last_t
        if elapsed > 0:
            transfer.remaining -= transfer.flow.rate * elapsed
            if transfer.remaining < 0:
                transfer.remaining = 0.0
            transfer.last_t = now

    # -- allocation --------------------------------------------------------------
    def _reallocate(self) -> None:
        """Register -> compute -> allocate over the affected flow set."""
        self.reallocations += 1
        t0 = time.perf_counter()
        flows, links = self._solver.plan()
        if flows:
            sim = self.sim
            now = sim.now
            # Bring affected transfers up to date under the *old* rates
            # (the body of _sync_transfer, inlined: this loop runs once
            # per in-flight transfer per reallocation).
            for flow in flows:
                rate = flow.rate
                for transfer in flow._transfers:
                    elapsed = now - transfer.last_t
                    if elapsed > 0:
                        transfer.remaining -= rate * elapsed
                        if transfer.remaining < 0:
                            transfer.remaining = 0.0
                        transfer.last_t = now
            self._solver.compute(flows)
            self.solved_flows += len(flows)
            # Reschedule affected in-flight transfers under the new rates
            # (_schedule_completion + Simulator.schedule, inlined; the
            # heap tuple and completion time are built identically).
            heap = sim._heap
            push = heapq.heappush
            complete = self._complete
            for flow in flows:
                rate = flow.rate
                if rate <= _EPS:
                    for transfer in flow._transfers:
                        transfer._generation += 1  # stalls; reallocation later
                    continue
                for transfer in flow._transfers:
                    transfer._generation += 1
                    sim._seq += 1
                    push(heap, (
                        now + transfer.remaining / rate,
                        sim._seq,
                        complete,
                        (transfer, transfer._generation),
                    ))
        self.solver_seconds += time.perf_counter() - t0

        # Per-edge utilisation timelines: every reallocation is a change
        # point of the piecewise-constant fluid rates, so sampling here
        # captures the exact utilisation curve of each affected link.
        metrics = self.sim.metrics
        if metrics is not None and flows:
            now = self.sim.now
            for link in links:
                gauge = metrics.gauge(
                    f"fabric.link.utilization{{link={link.name}}}"
                )
                gauge.set(now, link.utilization())

    def _note_forced_exit(self, level: float, n_unfixed: int) -> None:
        """Progressive filling found a positive step but could fix no flow
        (a floating-point corner: the step rounds to a level that crosses
        no cap and saturates no link). The loop exits, leaving the
        still-unfixed flows at their pre-solve rate of zero; transfers on
        them stall until a later reallocation. Counted and logged so the
        fallback is never silent."""
        self.forced_exits += 1
        if self.sim.metrics is not None:
            self.sim.metrics.incr("fabric.solver.forced_exit")
        _LOG.warning(
            "progressive filling forced exit at level %.6g with %d unfixed "
            "flow(s); their rates stay 0 until the next reallocation",
            level, n_unfixed,
        )
