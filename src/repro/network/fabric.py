"""Cluster fabric: nodes, NIC links, and the message latency model.

The fabric assumes a non-blocking fat-tree / dragonfly-class core (true of
NEXTGenIO's Omni-Path deployment at the scales benchmarked), so contention
is modelled at the NIC endpoints only. Every node gets a transmit link and
a receive link in the shared :class:`~repro.network.flows.FlowNetwork`;
bulk data movement opens flows across those links (plus storage-device
links supplied by the caller), while small control messages pay a simple
latency + serialization delay without occupying flow capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.network.flows import FlowNetwork, Link
from repro.sim.core import Simulator


@dataclass(frozen=True)
class NodeAddr:
    """Opaque handle for a node attached to the fabric."""

    name: str

    def __str__(self) -> str:
        return self.name


class Fabric:
    """Nodes + NIC links + latency model + endpoint registry."""

    def __init__(
        self,
        sim: Simulator,
        base_latency: float = 1.5e-6,
        msg_bandwidth: float = 11e9,
        software_overhead: float = 0.8e-6,
    ):
        self.sim = sim
        self.flownet = FlowNetwork(sim)
        #: one-way wire latency between any two distinct nodes
        self.base_latency = base_latency
        #: serialization bandwidth applied to small (non-flow) messages
        self.msg_bandwidth = msg_bandwidth
        #: per-message CPU cost at each end (libfabric + provider stack)
        self.software_overhead = software_overhead
        self._nodes: Dict[str, Tuple[Link, Link]] = {}
        self._endpoints: Dict[str, "object"] = {}

    # -- topology ------------------------------------------------------------
    def add_node(self, name: str, nic_bw: float, rails: int = 1) -> NodeAddr:
        """Attach a node with ``rails`` NIC rails of ``nic_bw`` bytes/s each.

        Multi-rail adapters are aggregated into a single tx and a single rx
        link of summed capacity (DAOS and MPI both stripe bulk transfers
        over rails).
        """
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        total = nic_bw * rails
        tx = self.flownet.add_link(f"nic_tx:{name}", total)
        rx = self.flownet.add_link(f"nic_rx:{name}", total)
        self._nodes[name] = (tx, rx)
        return NodeAddr(name)

    def nic_tx(self, addr: NodeAddr) -> Link:
        return self._node_links(addr)[0]

    def nic_rx(self, addr: NodeAddr) -> Link:
        return self._node_links(addr)[1]

    def _node_links(self, addr: NodeAddr) -> Tuple[Link, Link]:
        try:
            return self._nodes[addr.name]
        except KeyError:
            raise NetworkError(f"unknown node {addr!r}") from None

    # -- control messages -------------------------------------------------------
    def msg_delay(self, src: NodeAddr, dst: NodeAddr, nbytes: int) -> float:
        """One-way delivery delay for a small control message."""
        if src.name == dst.name:
            # loopback: software only
            return 2 * self.software_overhead
        return (
            self.base_latency
            + 2 * self.software_overhead
            + nbytes / self.msg_bandwidth
        )

    # -- endpoint registry -------------------------------------------------------
    def register_endpoint(self, name: str, endpoint: "object") -> None:
        if name in self._endpoints:
            raise NetworkError(f"duplicate endpoint {name!r}")
        self._endpoints[name] = endpoint

    def endpoint(self, name: str) -> "object":
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    def deregister_endpoint(self, name: str) -> None:
        self._endpoints.pop(name, None)
