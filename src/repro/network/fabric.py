"""Cluster fabric: nodes, NIC links, and the message latency model.

The fabric assumes a non-blocking fat-tree / dragonfly-class core (true of
NEXTGenIO's Omni-Path deployment at the scales benchmarked), so contention
is modelled at the NIC endpoints only. Every node gets a transmit link and
a receive link in the shared :class:`~repro.network.flows.FlowNetwork`;
bulk data movement opens flows across those links (plus storage-device
links supplied by the caller), while small control messages pay a simple
latency + serialization delay without occupying flow capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.network.flows import FlowNetwork, Link
from repro.sim.core import Simulator


@dataclass(frozen=True)
class NodeAddr:
    """Opaque handle for a node attached to the fabric."""

    name: str

    def __str__(self) -> str:
        return self.name


class Fabric:
    """Nodes + NIC links + latency model + endpoint registry."""

    def __init__(
        self,
        sim: Simulator,
        base_latency: float = 1.5e-6,
        msg_bandwidth: float = 11e9,
        software_overhead: float = 0.8e-6,
        rpc_timeout: float = 5e-3,
        flow_solver: Optional[str] = None,
    ):
        self.sim = sim
        #: bulk-data bandwidth allocator; ``flow_solver`` picks the
        #: engine (``reference``/``incremental``, default from the
        #: ``REPRO_FLOW_SOLVER`` environment variable)
        self.flownet = FlowNetwork(sim, solver=flow_solver)
        #: one-way wire latency between any two distinct nodes
        self.base_latency = base_latency
        #: serialization bandwidth applied to small (non-flow) messages
        self.msg_bandwidth = msg_bandwidth
        #: per-message CPU cost at each end (libfabric + provider stack)
        self.software_overhead = software_overhead
        #: RPC-caller timeout against an unresponsive peer (see
        #: :class:`~repro.hardware.specs.FabricSpec.rpc_timeout`)
        self.rpc_timeout = rpc_timeout
        self._nodes: Dict[str, Tuple[Link, Link]] = {}
        self._endpoints: Dict[str, "object"] = {}
        # -- fault plane state (see the fault-plane section below) --
        #: directed (src_node, dst_node) pairs whose messages are dropped
        self._blocked: Set[Tuple[str, str]] = set()
        #: directed per-pair extra one-way latency
        self._extra_delay: Dict[Tuple[str, str], float] = {}
        #: directed per-pair drop predicates (flaky links)
        self._drop_rules: Dict[Tuple[str, str], Callable[[], bool]] = {}
        self.dropped_messages = 0
        self.delivered_messages = 0

    # -- topology ------------------------------------------------------------
    def add_node(self, name: str, nic_bw: float, rails: int = 1) -> NodeAddr:
        """Attach a node with ``rails`` NIC rails of ``nic_bw`` bytes/s each.

        Multi-rail adapters are aggregated into a single tx and a single rx
        link of summed capacity (DAOS and MPI both stripe bulk transfers
        over rails).
        """
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        total = nic_bw * rails
        tx = self.flownet.add_link(f"nic_tx:{name}", total)
        rx = self.flownet.add_link(f"nic_rx:{name}", total)
        self._nodes[name] = (tx, rx)
        return NodeAddr(name)

    def nic_tx(self, addr: NodeAddr) -> Link:
        return self._node_links(addr)[0]

    def nic_rx(self, addr: NodeAddr) -> Link:
        return self._node_links(addr)[1]

    def _node_links(self, addr: NodeAddr) -> Tuple[Link, Link]:
        try:
            return self._nodes[addr.name]
        except KeyError:
            raise NetworkError(f"unknown node {addr!r}") from None

    # -- control messages -------------------------------------------------------
    def msg_delay(self, src: NodeAddr, dst: NodeAddr, nbytes: int) -> float:
        """One-way delivery delay for a small control message."""
        if src.name == dst.name:
            # loopback: software only
            return 2 * self.software_overhead
        return (
            self.base_latency
            + 2 * self.software_overhead
            + nbytes / self.msg_bandwidth
        )

    # -- fault plane -------------------------------------------------------------
    # Partitions, flaky links and latency spikes operate on *node pairs*:
    # every endpoint message between the pair is affected, which is exactly
    # how a fabric failure presents (Raft, engine RPC and client traffic all
    # degrade together). Bulk fluid flows are modelled separately; degrading
    # them goes through FlowNetwork.set_link_capacity.

    def _check_node(self, name: str) -> str:
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}")
        return name

    def partition(
        self, side_a: Iterable[str], side_b: Iterable[str]
    ) -> List[Tuple[str, str]]:
        """Cut the fabric between two groups of node names (both ways).

        Messages across the cut are dropped silently — from the protocols'
        point of view the peer just stopped answering. Returns the blocked
        pair list, usable as a token for a targeted :meth:`heal`.
        """
        a = [self._check_node(n) for n in side_a]
        b = [self._check_node(n) for n in side_b]
        pairs: List[Tuple[str, str]] = []
        for x in a:
            for y in b:
                if x == y:
                    raise NetworkError(f"node {x!r} on both sides of partition")
                pairs.append((x, y))
                pairs.append((y, x))
        self._blocked.update(pairs)
        return pairs

    def heal(self, pairs: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        """Undo partitions: all of them, or just the given pair token."""
        if pairs is None:
            self._blocked.clear()
        else:
            self._blocked.difference_update(pairs)

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked

    def set_extra_delay(
        self, a: str, b: str, extra: float, bidirectional: bool = True
    ) -> None:
        """Add ``extra`` seconds of one-way latency between two nodes
        (0 clears)."""
        if extra < 0:
            raise NetworkError(f"negative extra delay: {extra}")
        for pair in ((a, b), (b, a)) if bidirectional else ((a, b),):
            if extra == 0:
                self._extra_delay.pop(pair, None)
            else:
                self._extra_delay[pair] = extra

    def set_drop_rule(
        self,
        a: str,
        b: str,
        rule: Optional[Callable[[], bool]] = None,
        bidirectional: bool = True,
    ) -> None:
        """Install a per-message drop predicate between two nodes (flaky
        link); ``None`` clears. The rule must be deterministic for the
        simulation to stay reproducible — draw from a named RNG stream."""
        for pair in ((a, b), (b, a)) if bidirectional else ((a, b),):
            if rule is None:
                self._drop_rules.pop(pair, None)
            else:
                self._drop_rules[pair] = rule

    def transmit(self, src: NodeAddr, target: "object", message: "object") -> None:
        """Deliver ``message`` (an :class:`~repro.network.ofi.Message`) to
        ``target`` (an Endpoint), subject to the fault plane: partitioned
        pairs drop silently, flaky rules may drop, per-pair extra latency
        adds to the base model."""
        pair = (src.name, target.addr.name)
        tracer = self.sim.tracer
        if pair in self._blocked or (
            (rule := self._drop_rules.get(pair)) is not None and rule()
        ):
            self.dropped_messages += 1
            if tracer is not None:
                tracer.instant(
                    "fabric.drop",
                    "fabric",
                    node=src.name,
                    attrs={"dst": target.addr.name, "tag": message.tag},
                )
            if self.sim.metrics is not None:
                self.sim.metrics.incr("fabric.msgs.dropped")
            return
        delay = self.msg_delay(src, target.addr, message.nbytes)
        delay += self._extra_delay.get(pair, 0.0)
        self.delivered_messages += 1
        if tracer is not None:
            tracer.event(
                "fabric.msg",
                "fabric",
                node=src.name,
                start=self.sim.now,
                end=self.sim.now + delay,
                attrs={
                    "dst": target.addr.name,
                    "nbytes": message.nbytes,
                    "tag": message.tag,
                },
            )
        if self.sim.metrics is not None:
            self.sim.metrics.incr("fabric.msgs.delivered")
        self.sim.schedule(delay, target._deliver, message)

    # -- endpoint registry -------------------------------------------------------
    def register_endpoint(self, name: str, endpoint: "object") -> None:
        if name in self._endpoints:
            raise NetworkError(f"duplicate endpoint {name!r}")
        self._endpoints[name] = endpoint

    def endpoint(self, name: str) -> "object":
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    def deregister_endpoint(self, name: str) -> None:
        self._endpoints.pop(name, None)
