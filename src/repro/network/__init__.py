"""Fluid-flow network and fabric models.

The bandwidth model follows the SimGrid school of network simulation:
long-lived *flows* traverse capacity-constrained *links* and receive a
max-min fair share, recomputed whenever the flow population changes.
A flow can consume a different fraction of its rate on each link (a
stream striped over *k* storage targets puts only 1/k of its bytes on
each target), which is what lets a single flow model a DAOS object-class
stripe exactly.

:mod:`repro.network.fabric` builds per-node NIC links plus a message
latency model; :mod:`repro.network.ofi` layers OFI-like endpoints (tagged
messages, RPC, bulk RDMA) on top.
"""

from repro.network.flows import FlowNetwork, Link, Flow
from repro.network.fabric import Fabric, NodeAddr
from repro.network.ofi import Endpoint, Rpc, RpcServer

__all__ = [
    "FlowNetwork",
    "Link",
    "Flow",
    "Fabric",
    "NodeAddr",
    "Endpoint",
    "Rpc",
    "RpcServer",
]
