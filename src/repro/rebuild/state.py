"""Per-target state machine recorded in the Raft-backed pool map.

Mirrors the ``pool_comp_state`` lifecycle of real DAOS targets:

- ``UP`` — healthy; serves reads and writes.
- ``DOWN`` — administratively excluded or failed; serves nothing. The
  pool map records the global epoch at the moment of exclusion (the
  *watermark*): every write that the target missed carries a newer
  epoch, which is what lets reintegration resync only the exclusion
  window instead of the whole shard.
- ``REBUILDING`` — reintegrating. The target accepts *writes* (so the
  resync has a fixed amount of catch-up to do) but serves no *reads*
  (its data is incomplete until the resync drains). This is the DAOS
  ``UP`` (reint) phase before the target turns ``UPIN``.
- ``DOWNOUT`` — permanently evicted. Never returns; the rebuild engine
  restores redundancy by reconstructing the lost shard onto a
  deterministic spare target, and ``rebuilt`` flips once the spare holds
  a complete copy (before that, reads treat the slot as degraded while
  writes already land on the spare).

Each transition bumps the pool-map version and records it in the status,
so clients can reason about which map revision a state belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

UP = "UP"
DOWN = "DOWN"
REBUILDING = "REBUILDING"
DOWNOUT = "DOWNOUT"

#: legal transitions; DOWNOUT is terminal.
_TRANSITIONS = {
    UP: frozenset({DOWN, DOWNOUT}),
    DOWN: frozenset({REBUILDING, DOWNOUT}),
    REBUILDING: frozenset({UP, DOWN, DOWNOUT}),
    DOWNOUT: frozenset(),
}


def can_transition(current: str, target: str) -> bool:
    return target in _TRANSITIONS.get(current, frozenset())


@dataclass(frozen=True)
class TargetStatus:
    """One target's pool-map entry while it is anything but healthy-UP.

    ``version`` is the pool-map version of the transition that produced
    this state; ``watermark`` is the global epoch at exclusion time (the
    resync lower bound); ``rebuilt`` only applies to DOWNOUT and flips
    once the spare replacement holds a complete copy of the lost shard.
    """

    state: str
    version: int
    watermark: int = 0
    rebuilt: bool = False

    def advance(self, state: str, version: int,
                watermark: Optional[int] = None,
                rebuilt: Optional[bool] = None) -> "TargetStatus":
        if not can_transition(self.state, state):
            raise ValueError(f"illegal target transition {self.state} -> {state}")
        return TargetStatus(
            state=state,
            version=version,
            watermark=self.watermark if watermark is None else watermark,
            rebuilt=self.rebuilt if rebuilt is None else rebuilt,
        )

    # ------------------------------------------------- raft serialization
    def to_record(self) -> Dict:
        return {"state": self.state, "version": self.version,
                "watermark": self.watermark, "rebuilt": self.rebuilt}

    @classmethod
    def from_record(cls, record: Dict) -> "TargetStatus":
        return cls(state=record["state"], version=record["version"],
                   watermark=record.get("watermark", 0),
                   rebuilt=record.get("rebuilt", False))
