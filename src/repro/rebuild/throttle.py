"""Rebuild bandwidth throttle.

Real DAOS ships rebuild with a tunable share of engine bandwidth (the
``rebuild space/bw reservation``) so that recovering a pool does not
starve foreground I/O. We reproduce that with the flow network's
intrinsic rate caps: every rebuild migration flow is opened with
``cap = fraction × bottleneck-link capacity``, which bounds the traffic
the rebuild may consume while max-min fair sharing hands everything else
to foreground flows. ``fraction >= 1`` disables the throttle (the flow
is then limited only by fair sharing).

The cap arithmetic itself now lives in :func:`repro.qos.bottleneck_cap`
(shared with the multi-tenant QoS layer); this class is the thin
rebuild-flavoured wrapper and keeps byte-identical behaviour — same
expression, same float evaluation order — pinned by ``tests/qos``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.qos import bottleneck_cap


class RebuildThrottle:
    """Caps rebuild flows to a fraction of the bottleneck bandwidth."""

    def __init__(self, fraction: float = 0.25):
        self.fraction = float(fraction)

    def cap_for(self, weighted_links: Iterable[Tuple[object, float]]) -> Optional[float]:
        """Flow-rate cap for a migration over ``(link, weight)`` pairs.

        The binding constraint of a flow is the link with the smallest
        ``capacity / weight`` ratio (a weight > 1 means the flow crosses
        that link with multiplied consumption). Returns ``None`` when the
        throttle is disabled.
        """
        return bottleneck_cap(weighted_links, self.fraction)
