"""The rebuild scheduler: scan surviving shards, migrate, converge.

One :class:`RebuildManager` serves a :class:`~repro.daos.system.DaosSystem`.
Pool-map transitions queue :class:`RebuildJob`\\ s (resync after a
reintegration, restore after a permanent exclusion); a single per-pool
runner task executes them FIFO, so concurrent failures rebuild in a
deterministic order.

A job runs the DAOS scan/pull protocol in converge-loop form:

1. **scan** — walk every engine's VOS shard inventory for the pool,
   compute each object's layout algorithmically, and collect the items
   the destination target is missing: everything newer than the job's
   epoch watermark that the destination does not already hold (the
   dest-side filter makes rounds shrink even under sustained foreground
   writes).
2. **migrate** — replay the items onto the destination shard at their
   *original* epochs through one fluid flow spanning the source media /
   NIC links and the destination's media and target links, capped by the
   :class:`~repro.rebuild.throttle.RebuildThrottle` so foreground I/O
   keeps the remaining bandwidth.
3. repeat with the watermark advanced to the epoch observed at the start
   of the round; an empty scan means the destination has converged and
   the pool map flips it UP (or flags the DOWNOUT shard rebuilt).

Replicated groups copy whole extents from any UP survivor; EC groups
reconstruct the missing cell (or parity) per dkey by XOR over the
survivors, exactly mirroring the degraded-read math in
``repro.daos.object``.

Deviations from real DAOS (see DESIGN.md §9): the scanner reads
surviving VOS shards directly instead of issuing enumeration RPCs (so a
rebuild can never deadlock against a crashed engine's RPC queue — the
shards live in persistent memory), and its CPU cost is charged as an
aggregate per-round delay rather than per-RPC.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Generator, Iterator, List, Optional, Tuple

from repro.daos.placement import PlacementMap, effective_groups
from repro.daos.vos.container import VosContainer, _value_footprint
from repro.daos.vos.extent import ExtentTree
from repro.daos.vos.payload import Payload, XorPayload, ZeroPayload, concat_payloads
from repro.rebuild.state import DOWNOUT, UP
from repro.rebuild.throttle import RebuildThrottle


@dataclass
class _Item:
    """One unit of migration: a KV record or an extent bound for a shard."""

    cont: str
    oid: object
    dkey: object
    akey: object
    kind: str  # "single" | "extent"
    dest: int  # destination global target id
    src: int  # source global target id (flow accounting)
    epoch: int
    nbytes: int
    offset: int = 0
    payload: Optional[Payload] = None
    value: object = None


@dataclass
class RebuildJob:
    """One queued/running rebuild operation for a pool."""

    kind: str  # "resync" | "restore"
    pool_uuid: str
    tid: int
    watermark: int = 0
    status: str = "pending"  # pending|scanning|migrating|done|failed|cancelled
    cancelled: bool = False
    rounds: int = 0
    objects_total: int = 0
    objects_done: int = 0
    items_total: int = 0
    items_done: int = 0
    bytes_total: int = 0
    bytes_moved: int = 0
    started: Optional[float] = None
    finished: Optional[float] = None
    map_version: Optional[int] = None
    error: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.status in ("pending", "scanning", "migrating")

    def to_record(self) -> Dict:
        return {
            "kind": self.kind,
            "tid": self.tid,
            "status": self.status,
            "rounds": self.rounds,
            "objects": [self.objects_done, self.objects_total],
            "bytes_moved": self.bytes_moved,
        }


class RebuildManager:
    """Schedules and executes rebuild jobs for every pool of a system."""

    #: safety valve on the converge loop; with map-version fencing every
    #: post-REBUILDING write also lands on the destination, so rounds
    #: strictly shrink and real convergence takes 2-3 rounds
    MAX_ROUNDS = 32

    def __init__(self, system, throttle_fraction: float = 0.25):
        self.system = system
        self.sim = system.sim
        self.throttle = RebuildThrottle(throttle_fraction)
        self.jobs: List[RebuildJob] = []
        self._queues: Dict[str, deque] = defaultdict(deque)
        self._runners: Dict[str, object] = {}  # pool_uuid -> runner Task
        self._placements: Dict[str, PlacementMap] = {}

    # ------------------------------------------------------------- scheduling
    def schedule_resync(self, pool_uuid: str, tid: int, watermark: int) -> RebuildJob:
        """Queue a resync of everything target ``tid`` missed while DOWN."""
        return self._enqueue(
            RebuildJob("resync", pool_uuid, tid, watermark=watermark)
        )

    def schedule_restore(self, pool_uuid: str, tid: int) -> RebuildJob:
        """Queue a full redundancy restore after a permanent exclusion."""
        return self._enqueue(RebuildJob("restore", pool_uuid, tid))

    def _enqueue(self, job: RebuildJob) -> RebuildJob:
        self.jobs.append(job)
        self._queues[job.pool_uuid].append(job)
        if job.pool_uuid not in self._runners:
            self._runners[job.pool_uuid] = self.sim.spawn(
                self._pool_runner(job.pool_uuid), f"rebuild:{job.pool_uuid}"
            )
        return job

    def cancel(self, pool_uuid: str, tid: int) -> None:
        """Abort the active/queued jobs for a target that failed again."""
        for job in self.jobs:
            if job.pool_uuid == pool_uuid and job.tid == tid and job.active:
                job.cancelled = True

    # ------------------------------------------------------------- queries
    def busy(self, pool_uuid: str) -> bool:
        return pool_uuid in self._runners

    def progress(self, pool_uuid: str) -> Dict:
        """``dmg pool query``-style rebuild status block."""
        jobs = [j for j in self.jobs if j.pool_uuid == pool_uuid]
        active = [j for j in jobs if j.active]
        if active:
            status = "busy"
        elif jobs:
            status = "done" if all(j.status == "done" for j in jobs) else "idle"
        else:
            status = "idle"
        bytes_total = sum(j.bytes_total for j in jobs)
        bytes_moved = sum(j.bytes_moved for j in jobs)
        return {
            "status": status,
            "jobs_total": len(jobs),
            "jobs_active": len(active),
            "objects_pending": sum(
                j.objects_total - j.objects_done for j in active
            ),
            "bytes_moved": bytes_moved,
            "progress": 1.0 if bytes_total == 0 else bytes_moved / bytes_total,
            "jobs": [j.to_record() for j in jobs],
        }

    def wait(self, pool_uuid: str) -> Generator:
        """Task helper: block until the pool's rebuild queue drains."""
        while True:
            runner = self._runners.get(pool_uuid)
            if runner is None:
                return
            yield runner

    # ------------------------------------------------------------- runner
    def _pool_runner(self, pool_uuid: str) -> Generator:
        queue = self._queues[pool_uuid]
        try:
            while queue:
                job = queue.popleft()
                try:
                    yield from self._run_job(job)
                except Exception as exc:  # noqa: BLE001 - job isolation
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                finally:
                    if job.finished is None:
                        job.finished = self.sim.now
        finally:
            self._runners.pop(pool_uuid, None)

    def _run_job(self, job: RebuildJob) -> Generator:
        sim = self.sim
        tracer = sim.tracer
        metrics = sim.metrics
        # Aggregate metrics keep their pre-label names; the labeled
        # variants separate per-pool/per-target rebuild traffic in the
        # timeline (keys pre-sorted: pool < target).
        job_label = f"{{pool={job.pool_uuid},target={job.tid}}}"
        job.started = sim.now
        if job.cancelled:
            job.status = "cancelled"
            return
        after = job.watermark
        while job.rounds < self.MAX_ROUNDS:
            job.status = "scanning"
            # Epoch stamp *before* the scan: anything written concurrently
            # with this round carries a newer epoch and is picked up (or
            # confirmed already present) by the next round.
            scan_stamp = self.system.epoch_clock.current
            span = (
                tracer.begin(
                    "rebuild.scan", "rebuild",
                    attrs={"tid": job.tid, "round": job.rounds},
                )
                if tracer is not None
                else None
            )
            items, n_objects = self._scan(job, after)
            yield self._scan_cost(n_objects)
            if tracer is not None:
                tracer.end(span, items=len(items))
            job.rounds += 1
            if not items or job.cancelled:
                break
            job.objects_total += n_objects
            job.items_total += len(items)
            job.bytes_total += sum(i.nbytes for i in items)
            if metrics is not None:
                metrics.set_gauge("rebuild.objects_pending", n_objects)
                metrics.set_gauge(
                    f"rebuild.objects_pending{job_label}", n_objects
                )
            job.status = "migrating"
            yield from self._migrate(job, items)
            after = scan_stamp
        if metrics is not None:
            metrics.set_gauge("rebuild.objects_pending", 0)
            metrics.set_gauge(f"rebuild.objects_pending{job_label}", 0)
        if job.cancelled:
            job.status = "cancelled"
            return
        # Commit the state transition through the pool service. The
        # completion helpers re-check the Raft-backed map, so a cancel
        # that raced past the flag check above still cannot flip a
        # re-failed target UP.
        rsvc = self.system.rsvc_client()
        if job.kind == "resync":
            version = yield from self.system.mark_target_up(
                job.pool_uuid, job.tid, rsvc
            )
        else:
            version = yield from self.system.mark_downout_rebuilt(
                job.pool_uuid, job.tid, rsvc
            )
        job.map_version = version
        job.status = "done" if version is not None else "cancelled"
        job.finished = sim.now
        if metrics is not None:
            metrics.incr("rebuild.jobs_completed")
            metrics.observe("rebuild.job_seconds", job.finished - job.started)
            metrics.incr(f"rebuild.jobs_completed{job_label}")
            metrics.observe(
                f"rebuild.job_seconds{job_label}", job.finished - job.started
            )

    def _scan_cost(self, n_objects: int) -> float:
        """Aggregate CPU charge for one scan round (per-engine inventory
        walk plus per-object layout computation)."""
        spec = self.system.engines[0].spec
        return spec.per_rpc_cpu * (len(self.system.engines) + n_objects)

    # ------------------------------------------------------------- scanning
    def _placement(self, n_targets: int) -> PlacementMap:
        key = str(n_targets)
        pm = self._placements.get(key)
        if pm is None:
            pm = self._placements[key] = PlacementMap(n_targets)
        return pm

    def _vc(self, pool_uuid: str, tid: int, cont: str) -> VosContainer:
        ref = self.system.target(tid)
        return ref.engine.container_shard(pool_uuid, ref.local_tid, cont)

    def _objects(self, pool_uuid: str) -> Iterator[Tuple[str, object]]:
        """Every (cont_uuid, oid) stored anywhere in the pool, in a
        deterministic global order."""
        seen = set()
        for engine in self.system.engines:
            for shard in engine.pools.get(pool_uuid, {}).values():
                for cont_uuid, vc in shard.containers.items():
                    for oid in vc.objects:
                        seen.add((cont_uuid, oid))
        return iter(sorted(seen, key=lambda c_o: (c_o[0], c_o[1].hi, c_o[1].lo)))

    def _source_tid(self, pool_map, orig: int, eff: int, dest: int) -> Optional[int]:
        """Readable source for a layout slot, or None.

        UP originals serve directly; a DOWNOUT original whose spare has
        been fully rebuilt serves through the substitute. Anything else
        (DOWN, REBUILDING, un-rebuilt spare) holds incomplete data and
        must not be used as a rebuild source.
        """
        if pool_map.state_of(orig) == UP:
            return orig
        status = pool_map.statuses.get(orig)
        if (
            status is not None
            and status.state == DOWNOUT
            and status.rebuilt
            and eff != orig
            and eff != dest
            and pool_map.state_of(eff) == UP
        ):
            return eff
        return None

    def _scan(self, job: RebuildJob, after: int) -> Tuple[List[_Item], int]:
        pool_map = self.system._pool_maps[job.pool_uuid]
        placement = self._placement(pool_map.n_targets)
        downout = pool_map.downout
        downout_before = downout - {job.tid} if job.kind == "restore" else downout
        items: List[_Item] = []
        objects = set()
        for cont, oid in self._objects(job.pool_uuid):
            layout = placement.layout(oid)
            eff = effective_groups(layout, downout)
            eff_before = (
                effective_groups(layout, downout_before)
                if job.kind == "restore"
                else eff
            )
            for g, group in enumerate(layout.groups):
                for pos in range(len(group)):
                    if job.kind == "resync":
                        if group[pos] != job.tid:
                            continue
                        dest = job.tid
                    else:
                        # restore: only slots whose effective member
                        # changed when job.tid went DOWNOUT need data
                        if eff_before[g][pos] == eff[g][pos]:
                            continue
                        dest = eff[g][pos]
                        if pool_map.state_of(dest) != UP:
                            continue  # no spare / spare unavailable
                    sources = [
                        self._source_tid(pool_map, group[j], eff[g][j], dest)
                        if j != pos
                        else None
                        for j in range(len(group))
                    ]
                    new = self._object_items(
                        job.pool_uuid, cont, oid, sources, pos, dest, after
                    )
                    if new:
                        objects.add((cont, oid))
                        items.extend(new)
        return items, len(objects)

    def _object_items(
        self,
        pool_uuid: str,
        cont: str,
        oid,
        sources: List[Optional[int]],
        pos: int,
        dest: int,
        after: int,
    ) -> List[_Item]:
        src = next((t for t in sources if t is not None), None)
        if src is None:
            return []  # width-1 group or no readable survivor: nothing to pull
        items: List[_Item] = []
        dest_vc = self._vc(pool_uuid, dest, cont)
        src_vc = self._vc(pool_uuid, src, cont)
        ec = oid.oclass.is_ec
        # Single values are replicated across the whole group (EC
        # included), so any one survivor carries them all; full-replica
        # extents come off the same pass. EC cells need reconstruction.
        for entry in src_vc.rebuild_delta(oid, after):
            if entry[0] == "single":
                _, dkey, akey, epoch, value = entry
                if not _dest_has_single(dest_vc, oid, dkey, akey, epoch):
                    items.append(_Item(
                        cont, oid, dkey, akey, "single", dest, src, epoch,
                        nbytes=_value_footprint(value), value=value,
                    ))
            elif not ec:
                _, dkey, akey, offset, payload, epoch = entry
                if not _dest_covered(
                    dest_vc, oid, dkey, akey, offset, payload.nbytes, epoch
                ):
                    items.append(_Item(
                        cont, oid, dkey, akey, "extent", dest, src, epoch,
                        nbytes=payload.nbytes, offset=offset, payload=payload,
                    ))
        if ec:
            items.extend(self._ec_items(
                pool_uuid, cont, oid, sources, pos, dest_vc, dest, after
            ))
        return items

    def _ec_items(
        self,
        pool_uuid: str,
        cont: str,
        oid,
        sources: List[Optional[int]],
        pos: int,
        dest_vc: VosContainer,
        dest: int,
        after: int,
    ) -> List[_Item]:
        """Reconstruct the EC cell (pos < k) or parity (pos >= k) held by
        the destination slot, per dirty (dkey, akey)."""
        oclass = oid.oclass
        k = oclass.ec_k
        # source extent trees per position, and the set of dirty keys
        trees: List[Dict[Tuple, ExtentTree]] = [dict() for _ in sources]
        dirty: Dict[Tuple, int] = {}
        for j, tid in enumerate(sources):
            if tid is None:
                continue
            obj = self._vc(pool_uuid, tid, cont).objects.get(oid)
            if obj is None:
                continue
            for dkey, akeys in obj.dkeys.items():
                for akey, value in akeys.items():
                    if not isinstance(value, ExtentTree):
                        continue
                    key = (dkey, akey)
                    trees[j][key] = value
                    newest = value.max_epoch
                    if newest > after:
                        dirty[key] = max(dirty.get(key, 0), newest)
        items: List[_Item] = []
        first_src = next(t for t in sources if t is not None)
        for key in sorted(dirty):
            dkey, akey = key
            if pos < k:
                recon = self._reconstruct_data_cell(sources, trees, key, pos, k)
            else:
                recon = self._reconstruct_parity(sources, trees, key, k)
            if recon is None:
                continue  # insufficient survivors for this stripe
            payload, length = recon
            if length == 0:
                continue
            epoch = dirty[key]
            if not _dest_covered(dest_vc, oid, dkey, akey, 0, length, epoch):
                items.append(_Item(
                    cont, oid, dkey, akey, "extent", dest, first_src, epoch,
                    nbytes=length, offset=0, payload=payload.slice(0, length),
                ))
        return items

    def _reconstruct_data_cell(self, sources, trees, key, pos, k):
        """cell[pos] = parity XOR (other data cells), zero-padded to the
        parity cell's length.

        The true cell length is bracketed by its neighbours (cells fill
        left to right within a chunk); when the bounds disagree — a short
        final stripe — we keep the upper bound, which can append trailing
        zero bytes beyond the cell's true end. Reads stay byte-identical
        (missing ranges already read back as zeros); only ``size()`` can
        over-report, a documented deviation (DESIGN.md §9).
        """
        parity_j = next(
            (j for j in range(k, len(sources)) if sources[j] is not None), None
        )
        if parity_j is None:
            return None
        if any(sources[j] is None for j in range(k) if j != pos):
            return None
        ptree = trees[parity_j].get(key)
        pad_len = ptree.size if ptree is not None else 0
        if pad_len == 0:
            return None
        parts = [ptree.read(0, pad_len)]
        for j in range(k):
            if j == pos:
                continue
            parts.append(_padded_cell(trees[j].get(key), pad_len))
        upper = pad_len if pos == 0 else _cell_size(trees[pos - 1].get(key))
        return XorPayload(parts), upper

    def _reconstruct_parity(self, sources, trees, key, k):
        """parity = XOR of all data cells, padded to cell 0's length."""
        if any(sources[j] is None for j in range(k)):
            return None
        pad_len = _cell_size(trees[0].get(key))
        if pad_len == 0:
            return None
        parts = [_padded_cell(trees[j].get(key), pad_len) for j in range(k)]
        return XorPayload(parts), pad_len

    # ------------------------------------------------------------- migration
    def _migrate(self, job: RebuildJob, items: List[_Item]) -> Generator:
        system = self.system
        sim = self.sim
        tracer = sim.tracer
        metrics = sim.metrics
        fabric = system.fabric
        extent_bytes = sum(i.nbytes for i in items if i.kind == "extent")
        flow = None
        if extent_bytes > 0:
            weights = self._flow_weights(items, extent_bytes)
            cap = self.throttle.cap_for(weights.items())
            flow = fabric.flownet.open(
                list(weights.items()), cap=cap,
                label=f"rebuild:{job.pool_uuid}:t{job.tid}",
            )
        span = (
            tracer.begin(
                "rebuild.migrate", "rebuild",
                attrs={"tid": job.tid, "items": len(items),
                       "nbytes": extent_bytes},
            )
            if tracer is not None
            else None
        )
        last_obj = None
        try:
            for item in items:
                if job.cancelled:
                    break
                dest_vc = self._vc(job.pool_uuid, item.dest, item.cont)
                if item.kind == "single":
                    spec = system.target(item.dest).engine.spec
                    yield spec.per_rpc_cpu + spec.module.access_latency
                    dest_vc.replay_single(
                        item.oid, item.dkey, item.akey, item.epoch, item.value
                    )
                else:
                    yield flow.transfer(item.nbytes)
                    dest_vc.replay_array(
                        item.oid, item.dkey, item.akey, item.offset,
                        item.payload, item.epoch,
                    )
                job.items_done += 1
                job.bytes_moved += item.nbytes
                obj = (item.cont, item.oid)
                if obj != last_obj:
                    if last_obj is not None:
                        job.objects_done += 1
                    last_obj = obj
                if metrics is not None:
                    job_label = f"{{pool={job.pool_uuid},target={job.tid}}}"
                    metrics.incr("rebuild.bytes_moved", item.nbytes)
                    metrics.incr("rebuild.items_migrated")
                    metrics.incr(
                        f"rebuild.bytes_moved{job_label}", item.nbytes
                    )
                    metrics.incr(f"rebuild.items_migrated{job_label}")
            if last_obj is not None:
                job.objects_done += 1
        finally:
            if flow is not None:
                fabric.flownet.close(flow)
            if tracer is not None:
                tracer.end(span, moved=job.bytes_moved)

    def _flow_weights(self, items: List[_Item], total: int) -> Dict:
        """Links crossed by this round's flow, weighted by byte share.

        Sources charge their engine media-read path (plus NIC tx/rx when
        crossing nodes); destinations charge engine media-write and the
        per-target xstream link — the same links foreground streams use,
        so the throttle trades off against real foreground bandwidth.
        """
        system = self.system
        fabric = system.fabric
        weights: Dict = defaultdict(float)
        for item in items:
            if item.kind != "extent":
                continue
            frac = item.nbytes / total
            src_ref = system.target(item.src)
            dst_ref = system.target(item.dest)
            weights[src_ref.engine.slot.media_read] += frac
            weights[src_ref.hw.read_link] += frac
            weights[dst_ref.engine.slot.media_write] += frac
            weights[dst_ref.hw.write_link] += frac
            src_node = src_ref.engine.slot.node
            dst_node = dst_ref.engine.slot.node
            if src_node is not dst_node:
                weights[fabric.nic_tx(src_node.addr)] += frac
                weights[fabric.nic_rx(dst_node.addr)] += frac
        return weights


# ----------------------------------------------------------------- helpers
def _cell_size(tree: Optional[ExtentTree]) -> int:
    return tree.size if tree is not None else 0


def _padded_cell(tree: Optional[ExtentTree], pad_len: int) -> Payload:
    if tree is None or tree.size == 0:
        return ZeroPayload(pad_len)
    cell = tree.read(0, tree.size)
    if cell.nbytes >= pad_len:
        return cell.slice(0, pad_len)
    return concat_payloads([cell, ZeroPayload(pad_len - cell.nbytes)])


def _dest_has_single(
    vc: VosContainer, oid, dkey, akey, epoch: int
) -> bool:
    obj = vc.objects.get(oid)
    akeys = obj.dkeys.get(dkey) if obj is not None else None
    single = akeys.get(akey) if akeys is not None else None
    if single is None or isinstance(single, ExtentTree):
        return False
    return any(e >= epoch for e, _ in single.history)


def _dest_covered(
    vc: VosContainer, oid, dkey, akey, offset: int, length: int, epoch: int
) -> bool:
    obj = vc.objects.get(oid)
    akeys = obj.dkeys.get(dkey) if obj is not None else None
    tree = akeys.get(akey) if akeys is not None else None
    if tree is None or not isinstance(tree, ExtentTree):
        return False
    return tree.covered_at(offset, length, epoch)
