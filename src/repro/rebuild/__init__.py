"""Online rebuild & resync engine — self-healing replicated/EC pools.

The real DAOS pool service reacts to target state changes by launching a
rebuild: surviving targets scan their VOS trees for objects that lost a
shard and migrate reconstructed data onto the replacement (or returning)
target, throttled so foreground I/O degrades gracefully. This package
reproduces that control loop:

- :mod:`repro.rebuild.state` — the per-target state machine
  (UP → DOWN → REBUILDING → UP, plus DOWNOUT for permanent exclusion)
  recorded in the Raft-backed pool map with per-state version
  watermarks;
- :mod:`repro.rebuild.throttle` — caps rebuild traffic to a fraction of
  the engine/fabric bandwidth;
- :mod:`repro.rebuild.scheduler` — the scan/migrate engine driven by
  :class:`~repro.daos.system.DaosSystem` on state transitions.
"""

from repro.rebuild.state import (
    DOWN,
    DOWNOUT,
    REBUILDING,
    UP,
    TargetStatus,
    can_transition,
)
from repro.rebuild.throttle import RebuildThrottle
from repro.rebuild.scheduler import RebuildJob, RebuildManager

__all__ = [
    "UP",
    "DOWN",
    "REBUILDING",
    "DOWNOUT",
    "TargetStatus",
    "can_transition",
    "RebuildThrottle",
    "RebuildJob",
    "RebuildManager",
]
