"""Size/time unit helpers used throughout the stack.

Sizes are plain ``int`` bytes; times are ``float`` seconds. IOR-style size
strings ("1m", "64M", "4k", "1g") use binary units, matching the IOR
command-line convention (``-t 1m`` means 1 MiB).
"""

from __future__ import annotations

import zlib

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

US = 1e-6
MS = 1e-3

_SUFFIX = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kib": KiB,
    "kb": KiB,
    "m": MiB,
    "mib": MiB,
    "mb": MiB,
    "g": GiB,
    "gib": GiB,
    "gb": GiB,
    "t": TiB,
    "tib": TiB,
    "tb": TiB,
}


def parse_size(value: int | str) -> int:
    """Parse an IOR-style size ("64m", "1g", 4096) into bytes.

    >>> parse_size("1m")
    1048576
    >>> parse_size(512)
    512
    """
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"negative size: {value}")
        return value
    text = value.strip().lower()
    idx = len(text)
    while idx > 0 and not text[idx - 1].isdigit():
        idx -= 1
    num, suffix = text[:idx], text[idx:].strip()
    if not num or suffix not in _SUFFIX:
        raise ValueError(f"cannot parse size {value!r}")
    return int(num) * _SUFFIX[suffix]


def stable_seed(text: str) -> int:
    """Stable 16-bit content seed for deterministic payload patterns.

    Python's ``hash()`` is salted per process (PYTHONHASHSEED), so it
    must never seed simulated data; crc32 is stable across processes,
    platforms and python versions.

    >>> stable_seed("t2m/012")
    13014
    """
    return zlib.crc32(text.encode("utf-8")) & 0xFFFF


def fmt_size(nbytes: float) -> str:
    """Human-readable binary size string ("1.0 MiB")."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(value) < 1024 or unit == "PiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_bw(bytes_per_s: float) -> str:
    """Format a bandwidth as GiB/s (IOR reports MiB/s; GiB/s reads better
    at the aggregate scales in the paper)."""
    return f"{bytes_per_s / GiB:.2f} GiB/s"


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
