"""Trace-file validation CLI: ``python -m repro.obs.validate TRACE.json``.

Exit status 0 when the file parses and passes the trace-event schema
checks in :func:`repro.obs.chrome.validate_chrome_trace`; 1 otherwise,
with problems listed on stderr. Used by ``make trace`` and CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.chrome import validate_chrome_trace


def validate_file(path: str) -> list:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return validate_chrome_trace(doc)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="Validate a Chrome trace-event JSON file.",
    )
    parser.add_argument("trace", help="path to the trace JSON file")
    args = parser.parse_args(argv)
    try:
        problems = validate_file(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 1
    if problems:
        for problem in problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        return 1
    with open(args.trace, "r", encoding="utf-8") as fh:
        n_events = len(json.load(fh).get("traceEvents", []))
    print(f"{args.trace}: OK ({n_events} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make trace
    sys.exit(main())
