"""Observability-artifact validation CLI.

``python -m repro.obs.validate FILE.json [--kind trace|metrics|timeline]``

Validates any of the three JSON artifacts the obs pipeline emits:

* Chrome trace-event files (``--trace-out``) — schema checks in
  :func:`repro.obs.chrome.validate_chrome_trace`,
* metrics snapshots (``--metrics-out`` with a ``.json`` path) —
  :func:`validate_metrics_snapshot`,
* timeline dumps (``--timeline-out``) — :func:`validate_timeline`.

The kind is auto-detected from the document shape (``traceEvents`` →
trace, ``timeline_version`` → timeline, ``counters`` → metrics) unless
``--kind`` forces it. Exit status 0 when the file parses and passes; 1
otherwise, with problems listed on stderr. Used by ``make trace``,
``make timeline`` and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List

from repro.obs.chrome import validate_chrome_trace
from repro.obs.metrics import parse_metric_name

_NUM = (int, float)


def detect_kind(doc: Any) -> str:
    """Best-effort artifact-kind detection; 'unknown' when ambiguous."""
    if not isinstance(doc, dict):
        return "unknown"
    if "traceEvents" in doc:
        return "trace"
    if "timeline_version" in doc:
        return "timeline"
    if "counters" in doc or "histograms" in doc:
        return "metrics"
    return "unknown"


def _check_names(section: Any, where: str, problems: List[str]) -> None:
    if not isinstance(section, dict):
        problems.append(f"{where}: not an object")
        return
    for name in section:
        try:
            parse_metric_name(name)
        except ValueError as exc:
            problems.append(f"{where}[{name!r}]: {exc}")


def validate_metrics_snapshot(doc: Any) -> List[str]:
    """Schema-check a :meth:`MetricsRegistry.snapshot` dump."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if not isinstance(doc.get("sim_time"), _NUM):
        problems.append(f"bad sim_time {doc.get('sim_time')!r}")
    for section in ("counters", "gauges", "histograms", "reservoirs"):
        if section not in doc:
            problems.append(f"missing section {section!r}")
            continue
        _check_names(doc[section], section, problems)
    counters = doc.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            if not isinstance(value, _NUM):
                problems.append(f"counters[{name!r}]: non-numeric {value!r}")
    histograms = doc.get("histograms")
    if isinstance(histograms, dict):
        for name, h in histograms.items():
            if not isinstance(h, dict):
                problems.append(f"histograms[{name!r}]: not an object")
                continue
            for key in ("count", "mean", "p50", "p95", "p99", "p999"):
                if not isinstance(h.get(key), _NUM):
                    problems.append(
                        f"histograms[{name!r}]: missing/bad {key!r}"
                    )
            quantiles = [h.get(k) for k in ("p50", "p95", "p99", "p999")]
            if all(isinstance(q, _NUM) for q in quantiles):
                if sorted(quantiles) != quantiles:
                    problems.append(
                        f"histograms[{name!r}]: quantiles not monotone "
                        f"{quantiles}"
                    )
    gauges = doc.get("gauges")
    if isinstance(gauges, dict):
        for name, g in gauges.items():
            if not isinstance(g, dict):
                problems.append(f"gauges[{name!r}]: not an object")
                continue
            if not isinstance(g.get("value"), _NUM):
                problems.append(f"gauges[{name!r}]: missing/bad 'value'")
            timeline = g.get("timeline")
            if not isinstance(timeline, list):
                problems.append(f"gauges[{name!r}]: missing/bad 'timeline'")
    return problems


_SERIES_KINDS = ("rate", "value", "mean", "quantile", "count")


def validate_timeline(doc: Any) -> List[str]:
    """Schema-check a :meth:`TimeSeriesStore.to_json` dump."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if doc.get("timeline_version") != 1:
        problems.append(
            f"bad timeline_version {doc.get('timeline_version')!r}"
        )
    interval = doc.get("interval")
    if not isinstance(interval, _NUM) or interval <= 0:
        problems.append(f"bad interval {interval!r}")
    for key in ("start", "end"):
        if not isinstance(doc.get(key), _NUM):
            problems.append(f"bad {key} {doc.get(key)!r}")
    n_windows = doc.get("n_windows")
    if not isinstance(n_windows, int) or n_windows < 0:
        problems.append(f"bad n_windows {n_windows!r}")
    if not isinstance(doc.get("dropped_points"), int):
        problems.append(f"bad dropped_points {doc.get('dropped_points')!r}")
    series = doc.get("series")
    if not isinstance(series, dict):
        problems.append("series missing or not an object")
        series = {}
    for name, s in series.items():
        where = f"series[{name!r}]"
        base, _sep, stat = name.rpartition(":")
        if not base:
            problems.append(f"{where}: name lacks ':stat' suffix")
        else:
            try:
                parse_metric_name(base)
            except ValueError as exc:
                problems.append(f"{where}: {exc}")
        if not isinstance(s, dict):
            problems.append(f"{where}: not an object")
            continue
        if s.get("kind") not in _SERIES_KINDS:
            problems.append(f"{where}: unknown kind {s.get('kind')!r}")
        points = s.get("points")
        if not isinstance(points, list):
            problems.append(f"{where}: points missing or not a list")
            continue
        last_t = None
        for i, point in enumerate(points):
            if (not isinstance(point, list) or len(point) != 2
                    or not all(isinstance(x, _NUM) for x in point)):
                problems.append(f"{where}.points[{i}]: bad point {point!r}")
                continue
            t = point[0]
            if last_t is not None and t < last_t:
                problems.append(
                    f"{where}.points[{i}]: ts {t} < previous {last_t}"
                )
            last_t = t
    breaches = doc.get("breaches")
    if not isinstance(breaches, list):
        problems.append("breaches missing or not a list")
        breaches = []
    for i, b in enumerate(breaches):
        where = f"breaches[{i}]"
        if not isinstance(b, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("time", "rule", "kind", "metric", "stat", "windows"):
            if key not in b:
                problems.append(f"{where}: missing {key!r}")
        if b.get("kind") not in ("threshold", "stall"):
            problems.append(f"{where}: unknown kind {b.get('kind')!r}")
        if not isinstance(b.get("time"), _NUM):
            problems.append(f"{where}: bad time {b.get('time')!r}")
    return problems


_VALIDATORS = {
    "trace": validate_chrome_trace,
    "metrics": validate_metrics_snapshot,
    "timeline": validate_timeline,
}


def validate_file(path: str, kind: str = "auto") -> list:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if kind == "auto":
        kind = detect_kind(doc)
        if kind == "unknown":
            return ["cannot detect artifact kind (use --kind)"]
    return _VALIDATORS[kind](doc)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="Validate an obs artifact (Chrome trace, metrics "
                    "snapshot, or timeline JSON).",
    )
    parser.add_argument("file", help="path to the JSON artifact")
    parser.add_argument("--kind", choices=["auto", "trace", "metrics",
                                           "timeline"],
                        default="auto",
                        help="artifact kind (default: auto-detect)")
    args = parser.parse_args(argv)
    try:
        problems = validate_file(args.file, args.kind)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.file}: {exc}", file=sys.stderr)
        return 1
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 1
    with open(args.file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    kind = detect_kind(doc) if args.kind == "auto" else args.kind
    if kind == "trace":
        detail = f"{len(doc.get('traceEvents', []))} events"
    elif kind == "timeline":
        detail = (f"{len(doc.get('series', {}))} series, "
                  f"{doc.get('n_windows', 0)} windows, "
                  f"{len(doc.get('breaches', []))} breaches")
    else:
        detail = (f"{len(doc.get('counters', {}))} counters, "
                  f"{len(doc.get('histograms', {}))} histograms")
    print(f"{args.file}: OK ({kind}: {detail})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make targets
    sys.exit(main())
