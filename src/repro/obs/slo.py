"""Declarative SLO and stall rules evaluated at timeline-scrape time.

Rule grammar (DESIGN.md §12), one rule per string:

* Threshold rule::

      <metric> <stat> <op> <number> over <N> windows

  e.g. ``ior.write.latency p99 < 2e-3 over 3 windows``. ``stat`` is one
  of ``rate`` (counter per-second rate), ``value``/``mean`` (gauge),
  ``count``/``mean``/``p50``/``p95``/``p99``/``p999`` (histogram, per
  window); ``op`` is ``<``, ``<=``, ``>`` or ``>=``. The rule states an
  SLO that must hold; a window *violates* it when the stat is defined
  and the comparison fails. ``over N windows`` means N *consecutive*
  violating windows breach the rule — an undefined stat (no samples in
  the window, unknown metric) resets the streak.

* Stall rule::

      stall <progress-counter> while <guard-gauge> [over <N> windows]

  e.g. ``stall fabric.xfer.bytes while client.io.inflight over 2
  windows``. A window violates the rule when the progress counter's
  delta is zero while the guard gauge's window mean is positive — work
  is in flight but nothing is moving. This catches the silent-hang
  class the chaos tests otherwise detect only by iteration-limit
  timeout.

Breaches are emitted once per streak, on the transition to the N-th
consecutive violating window, and re-arm after any clean window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

THRESHOLD_STATS = (
    "rate", "value", "mean", "count", "p50", "p95", "p99", "p999",
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Consecutive windows required when a stall rule omits ``over N windows``.
DEFAULT_STALL_WINDOWS = 2


@dataclass(frozen=True)
class SloRule:
    """``<metric> <stat> <op> <threshold> over <windows> windows``."""

    metric: str
    stat: str
    op: str
    threshold: float
    windows: int
    text: str

    kind = "threshold"

    def violated(self, value: Optional[float]) -> bool:
        """True when the window stat is defined and the SLO fails."""
        if value is None:
            return False
        return not _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class StallRule:
    """``stall <progress-counter> while <guard-gauge> over N windows``."""

    progress: str
    guard: str
    windows: int
    text: str

    kind = "stall"

    def violated(self, progress_delta: Optional[float],
                 guard_mean: Optional[float]) -> bool:
        if progress_delta is None or guard_mean is None:
            return False
        return progress_delta == 0.0 and guard_mean > 0.0


@dataclass
class SloBreach:
    """Typed breach event; lands in the timeline store and the trace."""

    time: float
    rule: str
    kind: str
    metric: str
    stat: str
    windows: int
    value: Optional[float] = None
    threshold: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "time": self.time,
            "rule": self.rule,
            "kind": self.kind,
            "metric": self.metric,
            "stat": self.stat,
            "windows": self.windows,
        }
        if self.value is not None:
            doc["value"] = self.value
        if self.threshold is not None:
            doc["threshold"] = self.threshold
        doc.update(self.extra)
        return doc


def parse_slo(text: str):
    """Parse one rule string into an :class:`SloRule` or :class:`StallRule`."""
    tokens = text.split()
    if not tokens:
        raise ValueError("empty SLO rule")

    if tokens[0] == "stall":
        # stall <counter> while <gauge> [over <N> windows]
        if len(tokens) not in (4, 7) or (len(tokens) > 2
                                         and tokens[2] != "while"):
            raise ValueError(
                f"bad stall rule {text!r}: expected "
                f"'stall <counter> while <gauge> [over N windows]'"
            )
        windows = DEFAULT_STALL_WINDOWS
        if len(tokens) == 7:
            if tokens[4] != "over" or tokens[6] != "windows":
                raise ValueError(f"bad stall rule {text!r}")
            windows = _parse_windows(tokens[5], text)
        return StallRule(progress=tokens[1], guard=tokens[3],
                         windows=windows, text=text)

    # <metric> <stat> <op> <number> over <N> windows
    if len(tokens) != 7 or tokens[4] != "over" or tokens[6] != "windows":
        raise ValueError(
            f"bad SLO rule {text!r}: expected "
            f"'<metric> <stat> <op> <number> over <N> windows'"
        )
    metric, stat, op, threshold_s = tokens[:4]
    if stat not in THRESHOLD_STATS:
        raise ValueError(
            f"bad SLO rule {text!r}: stat {stat!r} not in {THRESHOLD_STATS}"
        )
    if op not in _OPS:
        raise ValueError(f"bad SLO rule {text!r}: op {op!r} not in <,<=,>,>=")
    try:
        threshold = float(threshold_s)
    except ValueError:
        raise ValueError(
            f"bad SLO rule {text!r}: threshold {threshold_s!r} is not a number"
        ) from None
    windows = _parse_windows(tokens[5], text)
    return SloRule(metric=metric, stat=stat, op=op, threshold=threshold,
                   windows=windows, text=text)


def _parse_windows(token: str, text: str) -> int:
    try:
        n = int(token)
    except ValueError:
        raise ValueError(
            f"bad SLO rule {text!r}: window count {token!r} is not an integer"
        ) from None
    if n < 1:
        raise ValueError(f"bad SLO rule {text!r}: window count must be >= 1")
    return n


def parse_rules(texts) -> List[object]:
    """Parse a list of rule strings."""
    return [parse_slo(t) for t in texts]


def default_rules() -> List[object]:
    """The always-on watchdog: breach when transfers are in flight but
    no bytes complete for :data:`DEFAULT_STALL_WINDOWS` windows."""
    return [parse_slo(
        f"stall fabric.xfer.bytes while client.io.inflight "
        f"over {DEFAULT_STALL_WINDOWS} windows"
    )]
