"""Span tracing for the simulated stack.

A :class:`Tracer` records *spans* — named intervals of simulated time
with a ``span_id``/``parent_id`` hierarchy, a ``layer`` (the track they
render on: ior, dfuse, dfs, client, rpc, fabric, engine, vos, ...) and a
``node`` (the process they belong to). Instrumented code obtains the
tracer with :func:`tracer_of` and wraps work in ``with tracer.span(...)``
blocks; when tracing is disabled every call short-circuits to a shared
no-op, so the instrumented hot paths cost one attribute read and one
truth test.

Parent resolution is *per simulated task*: the simulator exposes the
task currently being stepped, and each task carries its own span stack,
so interleaved ranks never adopt each other's spans. Crossing a task
boundary (client RPC -> server handler) is explicit: the caller ships
``tracer.current_span_id()`` inside the request and the server opens its
span with that ``parent_id`` (and may :meth:`Tracer.bind` it onto the
handler task so nested engine spans attach underneath).

The tracer never yields, never schedules events and never draws random
numbers — enabling it cannot perturb a simulation (a property pinned by
``tests/faults/test_determinism.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Span:
    """One traced interval (or instant, when ``kind == "i"``)."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "layer",
        "node",
        "start",
        "end",
        "attrs",
        "kind",
        "_keys",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        layer: str,
        node: Optional[str],
        start: float,
        kind: str = "X",
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.layer = layer
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.kind = kind
        self._keys: List[int] = []

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.span_id} {self.name!r} layer={self.layer} "
            f"[{self.start:.9f}, {self.end}]>"
        )


class _SpanHandle:
    """Context manager pairing one begin() with its end()."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Optional[Span]:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer.end(self.span)
        return False


class _NoopHandle:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op span handle; importable by instrumented call sites that
#: want a `with`-able placeholder when no tracer is installed.
NOOP_SPAN = _NoopHandle()
_NOOP_HANDLE = NOOP_SPAN


class Tracer:
    """Span recorder bound to a simulator clock."""

    def __init__(self, sim, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._stacks: Dict[int, List[Span]] = {}
        self._next_id = 1

    # ------------------------------------------------------------- context
    def _current_key(self) -> int:
        task = getattr(self.sim, "_current_task", None)
        return task.tid if task is not None else 0

    def current_span_id(self) -> Optional[int]:
        """The innermost open span of the running task (for propagation)."""
        if not self.enabled:
            return None
        stack = self._stacks.get(self._current_key())
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------- recording
    def begin(
        self,
        name: str,
        layer: str,
        node: Optional[str] = None,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a span; the matching :meth:`end` closes it.

        ``parent_id=None`` adopts the running task's innermost open span.
        ``node=None`` inherits the parent's node attribution.
        """
        if not self.enabled:
            return None
        key = self._current_key()
        stack = self._stacks.get(key)
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        if node is None and parent_id is not None:
            parent = self._by_id.get(parent_id)
            if parent is not None:
                node = parent.node
        span = Span(self._next_id, parent_id, name, layer, node, self.sim.now)
        self._next_id += 1
        if stack is None:
            stack = self._stacks[key] = []
        stack.append(span)
        span._keys.append(key)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if attrs:
            span.attrs.update(attrs)
        return span

    def end(self, span: Optional[Span], **attrs: Any) -> None:
        """Close a span opened with :meth:`begin` (no-op on ``None``)."""
        if span is None:
            return
        span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)
        for key in span._keys:
            stack = self._stacks.get(key)
            if stack is None:
                continue
            if span in stack:
                stack.remove(span)
            if not stack:
                del self._stacks[key]
        span._keys.clear()

    def span(
        self,
        name: str,
        layer: str,
        node: Optional[str] = None,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        """``with tracer.span(...):`` convenience around begin/end."""
        if not self.enabled:
            return _NOOP_HANDLE
        return _SpanHandle(self, self.begin(name, layer, node, parent_id, attrs))

    def event(
        self,
        name: str,
        layer: str,
        node: Optional[str],
        start: float,
        end: float,
        attrs: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
    ) -> Optional[Span]:
        """Record a completed span with explicit times (e.g. an in-flight
        fabric message whose delivery is scheduled, not awaited)."""
        if not self.enabled:
            return None
        if parent_id is None:
            parent_id = self.current_span_id()
        node_resolved = node
        if node_resolved is None and parent_id is not None:
            parent = self._by_id.get(parent_id)
            if parent is not None:
                node_resolved = parent.node
        span = Span(self._next_id, parent_id, name, layer, node_resolved, start)
        self._next_id += 1
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def instant(
        self,
        name: str,
        layer: str,
        node: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """A zero-duration marker event (fault injections, pool-map bumps)."""
        if not self.enabled:
            return None
        span = self.event(name, layer, node, self.sim.now, self.sim.now, attrs)
        if span is not None:
            span.kind = "i"
        return span

    # ------------------------------------------------------------- binding
    def bind(self, task, span: Optional[Span]) -> None:
        """Seed ``task``'s span stack with ``span`` so spans opened inside
        the (not yet started) task implicitly parent to it."""
        if span is None or not self.enabled:
            return
        tid = getattr(task, "tid", None)
        if tid is None:
            return
        self._stacks.setdefault(tid, []).insert(0, span)
        span._keys.append(tid)

    # ------------------------------------------------------------- queries
    def children_index(self) -> Dict[int, List[Span]]:
        """parent_id -> children, in recording order."""
        index: Dict[int, List[Span]] = {}
        for span in self.spans:
            if span.parent_id is not None:
                index.setdefault(span.parent_id, []).append(span)
        return index

    def __len__(self) -> int:
        return len(self.spans)


#: Shared disabled tracer handed out when a simulator has none installed.
class _NullClock:
    now = 0.0


NULL_TRACER = Tracer(_NullClock(), enabled=False)


def tracer_of(sim) -> Tracer:
    """The simulator's tracer, or the shared disabled one."""
    tracer = getattr(sim, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER
