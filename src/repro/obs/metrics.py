"""Hierarchical metrics registry with histograms and export formats.

Metric names follow ``layer.component.metric`` (DESIGN.md §7), e.g.
``engine.rpcs`` or ``ior.write.latency``, optionally carrying *labels*
in a ``{key=value,...}`` suffix — ``ior.write.latency{rank=3}``,
``rebuild.bytes_moved{pool=tank,target=5}`` — so per-pool, per-tenant,
per-target and per-rank traffic become separable series (DESIGN.md
§12). Label keys are kept sorted, making the full name canonical; the
registry is keyed on that canonical full name. The registry offers four
instrument kinds:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — time-weighted values with a bounded timeline of
  (t, value) points (per-edge fabric utilisation, queue depths),
* :class:`Histogram` — log2-bucketed latency distributions with
  p50/p95/p99/p999 estimation,
* :class:`Reservoir` — bounded uniform value samples (algorithm R),
  seeded through :class:`repro.sim.rng.RngStreams` so observation never
  perturbs simulation randomness.

Exports: :meth:`MetricsRegistry.to_prometheus` (text exposition format,
with cumulative ``_bucket{le=...}`` lines for histograms) and
:meth:`MetricsRegistry.snapshot` (JSON-serialisable dict);
:func:`write_metrics` picks the format from the file extension.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.rng import RngStreams

#: Smallest histogram bucket upper bound, in seconds (1 ns).
_HIST_LO = 1e-9
#: Number of log2 buckets; covers 1 ns .. ~584 years, plenty.
_HIST_BUCKETS = 64

#: Points kept per gauge timeline (utilisation curves, queue depths).
GAUGE_TIMELINE_CAP = 4096

#: Values kept per reservoir.
RESERVOIR_CAP = 512


# --------------------------------------------------------------------- labels
def format_metric_name(base: str, labels: Optional[Dict[str, Any]] = None) -> str:
    """Canonical full name: ``base{k=v,...}`` with keys sorted.

    Label keys and values are stringified verbatim; neither they nor the
    base may contain ``,`` ``{`` ``}`` or ``=`` (enforced here so every
    exporter — and :func:`parse_metric_name` — can round-trip the name).
    """
    if any(ch in base for ch in ",{}="):
        raise ValueError(
            f"metric base name {base!r} contains a reserved character"
        )
    if not labels:
        return base
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if not key or any(ch in value for ch in ",{}=") or any(
            ch in key for ch in ",{}="
        ):
            raise ValueError(
                f"metric label {key}={value!r} contains a reserved character"
            )
        parts.append(f"{key}={value}")
    return f"{base}{{{','.join(parts)}}}"


def parse_metric_name(full: str) -> Tuple[str, Dict[str, str]]:
    """Split a full metric name into ``(base, labels)``.

    Strict inverse of :func:`format_metric_name`: raises ``ValueError``
    on anything that would not round-trip — an unterminated label body,
    a base containing ``}``, or a key/value carrying a reserved
    character (``a{k=v}}`` and ``a{k=v=w}`` are malformed, not labels
    with funny values).
    """
    brace = full.find("{")
    if brace < 0:
        if "}" in full or "=" in full or "," in full:
            raise ValueError(f"malformed metric name {full!r}")
        return full, {}
    if not full.endswith("}"):
        raise ValueError(f"malformed metric name {full!r}")
    base = full[:brace]
    if any(ch in base for ch in ",}="):
        raise ValueError(f"malformed metric name {full!r}")
    labels: Dict[str, str] = {}
    body = full[brace + 1:-1]
    if body:
        for item in body.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key:
                raise ValueError(f"malformed metric label {item!r} in {full!r}")
            if any(ch in key for ch in "{}=") or any(
                ch in value for ch in "{}="
            ):
                raise ValueError(
                    f"metric label {item!r} in {full!r} contains a "
                    f"reserved character"
                )
            labels[key] = value
    return base, labels


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def incr(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Time-weighted gauge with a bounded (t, value) timeline.

    The integral/mean machinery mirrors ``repro.sim.trace._Gauge``
    (including the created-time window fix); on top of it the timeline
    retains the most recent :data:`GAUGE_TIMELINE_CAP` set-points so
    utilisation curves survive into the JSON snapshot.
    """

    __slots__ = ("name", "created", "last_t", "value", "integral", "timeline",
                 "vmin", "vmax")

    def __init__(self, name: str, created: float) -> None:
        self.name = name
        self.created = created
        self.last_t = created
        self.value = 0.0
        self.integral = 0.0
        self.timeline: deque = deque(maxlen=GAUGE_TIMELINE_CAP)
        self.vmin = math.inf
        self.vmax = -math.inf

    def set(self, now: float, value: float) -> None:
        self.integral += self.value * (now - self.last_t)
        self.last_t = now
        self.value = value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        self.timeline.append((now, value))

    def add(self, now: float, delta: float) -> None:
        self.set(now, self.value + delta)

    def mean(self, now: float) -> float:
        window = now - self.created
        total = self.integral + self.value * (now - self.last_t)
        return total / window if window > 0 else self.value


def bucket_upper(idx: int) -> float:
    """Upper bound of log2 bucket ``idx`` in seconds."""
    return _HIST_LO * (2.0 ** idx)


def bucket_quantile(buckets: List[int], count: int, q: float) -> float:
    """Estimated q-quantile of a log2 bucket-count array (unclamped).

    The interpolation is identical to :meth:`Histogram.quantile` minus
    the observed-extrema clamp, so it works on *bucket deltas* — the
    per-window histograms of :mod:`repro.obs.timeline` — where exact
    extrema are not tracked. Returns 0.0 when ``count`` is 0.
    """
    if count <= 0:
        return 0.0
    rank = max(q, 0.0) * count
    seen = 0
    for idx, n in enumerate(buckets):
        if n == 0:
            continue
        if seen + n >= rank:
            lo = 0.0 if idx == 0 else bucket_upper(idx - 1)
            hi = bucket_upper(idx)
            frac = (rank - seen) / n
            return lo + (hi - lo) * frac
        seen += n
    return bucket_upper(_HIST_BUCKETS - 1)


class Histogram:
    """Log2-bucketed histogram of non-negative values (latencies).

    Bucket i holds values in (lo * 2^(i-1), lo * 2^i]; bucket 0 holds
    everything <= lo. Quantiles interpolate within the matched bucket,
    clamped by the exact observed min/max.
    """

    __slots__ = ("name", "buckets", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets = [0] * _HIST_BUCKETS
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        self.buckets[self._index(value)] += 1

    @staticmethod
    def _index(value: float) -> int:
        if value <= _HIST_LO:
            return 0
        idx = int(math.ceil(math.log2(value / _HIST_LO)))
        return min(max(idx, 0), _HIST_BUCKETS - 1)

    @staticmethod
    def _upper(idx: int) -> float:
        return bucket_upper(idx)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        if q <= 0:
            return self.vmin
        if q >= 1:
            return self.vmax
        est = bucket_quantile(self.buckets, self.count, q)
        return min(max(est, self.vmin), self.vmax)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Reservoir:
    """Bounded uniform sample reservoir (algorithm R), deterministic."""

    __slots__ = ("name", "cap", "values", "count", "total", "_rng")

    def __init__(self, name: str, rng, cap: int = RESERVOIR_CAP) -> None:
        self.name = name
        self.cap = cap
        self.values: List[float] = []
        self.count = 0
        self.total = 0.0
        self._rng = rng

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self.values) < self.cap:
            self.values.append(value)
            return
        slot = int(self._rng.integers(0, self.count))
        if slot < self.cap:
            self.values[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-first-use registry keyed by dotted metric names."""

    def __init__(self, sim, seed: int = 0xDA05) -> None:
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.reservoirs: Dict[str, Reservoir] = {}
        # Dedicated stream family: enabling metrics must never perturb
        # the simulation's own RNG draws.
        self._rng = RngStreams(seed ^ 0x0B5E)

    # --------------------------------------------------------------- access
    #
    # Names that already contain ``{`` are assumed canonical (labels
    # sorted) — hot paths precompute them once with format_metric_name
    # rather than re-canonicalising per call.
    def counter(self, name: str,
                labels: Optional[Dict[str, Any]] = None) -> Counter:
        if labels:
            name = format_metric_name(name, labels)
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str,
              labels: Optional[Dict[str, Any]] = None) -> Gauge:
        if labels:
            name = format_metric_name(name, labels)
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name, self.sim.now)
        return g

    def histogram(self, name: str,
                  labels: Optional[Dict[str, Any]] = None) -> Histogram:
        if labels:
            name = format_metric_name(name, labels)
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def reservoir(self, name: str,
                  labels: Optional[Dict[str, Any]] = None) -> Reservoir:
        if labels:
            name = format_metric_name(name, labels)
        r = self.reservoirs.get(name)
        if r is None:
            r = self.reservoirs[name] = Reservoir(
                name, self._rng.stream(f"metrics:{name}")
            )
        return r

    # shorthands used on instrumented hot paths
    def incr(self, name: str, amount: float = 1.0,
             labels: Optional[Dict[str, Any]] = None) -> None:
        self.counter(name, labels).incr(amount)

    def observe(self, name: str, value: float,
                labels: Optional[Dict[str, Any]] = None) -> None:
        self.histogram(name, labels).observe(value)

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Dict[str, Any]] = None) -> None:
        self.gauge(name, labels).set(self.sim.now, value)

    # --------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable dump of every instrument."""
        now = self.sim.now
        return {
            "sim_time": now,
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: {
                    "value": g.value,
                    "mean": g.mean(now),
                    "min": None if g.vmin is math.inf else g.vmin,
                    "max": None if g.vmax is -math.inf else g.vmax,
                    "timeline": [[t, v] for t, v in g.timeline],
                }
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean,
                    "min": None if h.vmin is math.inf else h.vmin,
                    "max": None if h.vmax is -math.inf else h.vmax,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                    "p999": h.p999,
                }
                for name, h in sorted(self.histograms.items())
            },
            "reservoirs": {
                name: {
                    "count": r.count,
                    "mean": r.mean,
                    "values": list(r.values),
                }
                for name, r in sorted(self.reservoirs.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format.

        Base names are sanitised to ``[a-zA-Z0-9_]``; labels render in
        Prometheus syntax (``{k="v"}``). Histograms emit the real
        ``histogram`` type — cumulative ``_bucket{le="..."}`` lines up
        to the highest occupied log2 bucket plus ``+Inf``, then
        ``_sum``/``_count`` — so downstream tooling can aggregate them
        (summary quantiles cannot be merged across series).
        """
        now = self.sim.now
        lines: List[str] = []
        typed: set = set()

        def sanitise(name: str) -> str:
            return "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name
            )

        def split(full: str) -> Tuple[str, str]:
            """(sanitised base, rendered {k="v",...} or "")."""
            base, labels = parse_metric_name(full)
            if not labels:
                return sanitise(base), ""
            body = ",".join(
                f'{sanitise(k)}="{v}"' for k, v in sorted(labels.items())
            )
            return sanitise(base), "{" + body + "}"

        def type_line(metric: str, kind: str) -> None:
            # One TYPE line per base metric: labeled series share it.
            if metric not in typed:
                typed.add(metric)
                lines.append(f"# TYPE {metric} {kind}")

        def merge_labels(rendered: str, extra: str) -> str:
            if not rendered:
                return "{" + extra + "}"
            return rendered[:-1] + "," + extra + "}"

        for name, c in sorted(self.counters.items()):
            metric, lbl = split(name)
            type_line(metric, "counter")
            lines.append(f"{metric}{lbl} {c.value:g}")
        for name, g in sorted(self.gauges.items()):
            metric, lbl = split(name)
            type_line(metric, "gauge")
            lines.append(f"{metric}{lbl} {g.value:g}")
            lines.append(f"{metric}_mean{lbl} {g.mean(now):g}")
        for name, h in sorted(self.histograms.items()):
            metric, lbl = split(name)
            type_line(metric, "histogram")
            highest = -1
            for idx, n in enumerate(h.buckets):
                if n:
                    highest = idx
            cumulative = 0
            for idx in range(highest + 1):
                cumulative += h.buckets[idx]
                le = merge_labels(lbl, f'le="{bucket_upper(idx):g}"')
                lines.append(f"{metric}_bucket{le} {cumulative}")
            inf = merge_labels(lbl, 'le="+Inf"')
            lines.append(f"{metric}_bucket{inf} {h.count}")
            lines.append(f"{metric}_sum{lbl} {h.total:g}")
            lines.append(f"{metric}_count{lbl} {h.count}")
        return "\n".join(lines) + "\n"


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a metrics dump; ``.prom``/``.txt`` → Prometheus text,
    anything else → JSON snapshot."""
    if path.endswith((".prom", ".txt")):
        payload = registry.to_prometheus()
    else:
        payload = json.dumps(registry.snapshot(), indent=1, sort_keys=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
