"""Hierarchical metrics registry with histograms and export formats.

Metric names follow ``layer.component.metric`` (DESIGN.md §7), e.g.
``engine.e0.t1.inflight`` or ``ior.rank3.write.latency``. The registry
offers four instrument kinds:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — time-weighted values with a bounded timeline of
  (t, value) points (per-edge fabric utilisation, queue depths),
* :class:`Histogram` — log2-bucketed latency distributions with
  p50/p95/p99 estimation,
* :class:`Reservoir` — bounded uniform value samples (algorithm R),
  seeded through :class:`repro.sim.rng.RngStreams` so observation never
  perturbs simulation randomness.

Exports: :meth:`MetricsRegistry.to_prometheus` (text exposition format)
and :meth:`MetricsRegistry.snapshot` (JSON-serialisable dict);
:func:`write_metrics` picks the format from the file extension.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Dict, List

from repro.sim.rng import RngStreams

#: Smallest histogram bucket upper bound, in seconds (1 ns).
_HIST_LO = 1e-9
#: Number of log2 buckets; covers 1 ns .. ~584 years, plenty.
_HIST_BUCKETS = 64

#: Points kept per gauge timeline (utilisation curves, queue depths).
GAUGE_TIMELINE_CAP = 4096

#: Values kept per reservoir.
RESERVOIR_CAP = 512


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def incr(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Time-weighted gauge with a bounded (t, value) timeline.

    The integral/mean machinery mirrors ``repro.sim.trace._Gauge``
    (including the created-time window fix); on top of it the timeline
    retains the most recent :data:`GAUGE_TIMELINE_CAP` set-points so
    utilisation curves survive into the JSON snapshot.
    """

    __slots__ = ("name", "created", "last_t", "value", "integral", "timeline",
                 "vmin", "vmax")

    def __init__(self, name: str, created: float) -> None:
        self.name = name
        self.created = created
        self.last_t = created
        self.value = 0.0
        self.integral = 0.0
        self.timeline: deque = deque(maxlen=GAUGE_TIMELINE_CAP)
        self.vmin = math.inf
        self.vmax = -math.inf

    def set(self, now: float, value: float) -> None:
        self.integral += self.value * (now - self.last_t)
        self.last_t = now
        self.value = value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        self.timeline.append((now, value))

    def add(self, now: float, delta: float) -> None:
        self.set(now, self.value + delta)

    def mean(self, now: float) -> float:
        window = now - self.created
        total = self.integral + self.value * (now - self.last_t)
        return total / window if window > 0 else self.value


class Histogram:
    """Log2-bucketed histogram of non-negative values (latencies).

    Bucket i holds values in (lo * 2^(i-1), lo * 2^i]; bucket 0 holds
    everything <= lo. Quantiles interpolate within the matched bucket,
    clamped by the exact observed min/max.
    """

    __slots__ = ("name", "buckets", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets = [0] * _HIST_BUCKETS
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        self.buckets[self._index(value)] += 1

    @staticmethod
    def _index(value: float) -> int:
        if value <= _HIST_LO:
            return 0
        idx = int(math.ceil(math.log2(value / _HIST_LO)))
        return min(max(idx, 0), _HIST_BUCKETS - 1)

    @staticmethod
    def _upper(idx: int) -> float:
        return _HIST_LO * (2.0 ** idx)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        if q <= 0:
            return self.vmin
        if q >= 1:
            return self.vmax
        rank = q * self.count
        seen = 0
        for idx, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = 0.0 if idx == 0 else self._upper(idx - 1)
                hi = self._upper(idx)
                frac = (rank - seen) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.vmin), self.vmax)
            seen += n
        return self.vmax

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Reservoir:
    """Bounded uniform sample reservoir (algorithm R), deterministic."""

    __slots__ = ("name", "cap", "values", "count", "total", "_rng")

    def __init__(self, name: str, rng, cap: int = RESERVOIR_CAP) -> None:
        self.name = name
        self.cap = cap
        self.values: List[float] = []
        self.count = 0
        self.total = 0.0
        self._rng = rng

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self.values) < self.cap:
            self.values.append(value)
            return
        slot = int(self._rng.integers(0, self.count))
        if slot < self.cap:
            self.values[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-first-use registry keyed by dotted metric names."""

    def __init__(self, sim, seed: int = 0xDA05) -> None:
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.reservoirs: Dict[str, Reservoir] = {}
        # Dedicated stream family: enabling metrics must never perturb
        # the simulation's own RNG draws.
        self._rng = RngStreams(seed ^ 0x0B5E)

    # --------------------------------------------------------------- access
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name, self.sim.now)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def reservoir(self, name: str) -> Reservoir:
        r = self.reservoirs.get(name)
        if r is None:
            r = self.reservoirs[name] = Reservoir(
                name, self._rng.stream(f"metrics:{name}")
            )
        return r

    # shorthands used on instrumented hot paths
    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).incr(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(self.sim.now, value)

    # --------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable dump of every instrument."""
        now = self.sim.now
        return {
            "sim_time": now,
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: {
                    "value": g.value,
                    "mean": g.mean(now),
                    "min": None if g.vmin is math.inf else g.vmin,
                    "max": None if g.vmax is -math.inf else g.vmax,
                    "timeline": [[t, v] for t, v in g.timeline],
                }
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean,
                    "min": None if h.vmin is math.inf else h.vmin,
                    "max": None if h.vmax is -math.inf else h.vmax,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                }
                for name, h in sorted(self.histograms.items())
            },
            "reservoirs": {
                name: {
                    "count": r.count,
                    "mean": r.mean,
                    "values": list(r.values),
                }
                for name, r in sorted(self.reservoirs.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (names sanitised to [a-z0-9_])."""
        now = self.sim.now
        lines: List[str] = []

        def sanitise(name: str) -> str:
            return "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name
            )

        for name, c in sorted(self.counters.items()):
            metric = sanitise(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {c.value:g}")
        for name, g in sorted(self.gauges.items()):
            metric = sanitise(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {g.value:g}")
            lines.append(f"{metric}_mean {g.mean(now):g}")
        for name, h in sorted(self.histograms.items()):
            metric = sanitise(name)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f'{metric}{{quantile="0.5"}} {h.p50:g}')
            lines.append(f'{metric}{{quantile="0.95"}} {h.p95:g}')
            lines.append(f'{metric}{{quantile="0.99"}} {h.p99:g}')
            lines.append(f"{metric}_sum {h.total:g}")
            lines.append(f"{metric}_count {h.count}")
        return "\n".join(lines) + "\n"


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a metrics dump; ``.prom``/``.txt`` → Prometheus text,
    anything else → JSON snapshot."""
    if path.endswith((".prom", ".txt")):
        payload = registry.to_prometheus()
    else:
        payload = json.dumps(registry.snapshot(), indent=1, sort_keys=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
