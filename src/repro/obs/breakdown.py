"""Per-layer time accounting from recorded spans.

Answers the paper-evaluation question the raw figures can't: *where* did
an IOR phase spend its time? Each layer is charged its **exclusive**
time — span duration minus the duration of direct children (which are
charged to their own layers) — so the sum over layers equals the covered
span time exactly. Whatever wall time the root spans do not cover
(barrier waits, rank skew, scheduling gaps) is reported as
``(wait/other)``, which makes the components sum to the phase wall time
by construction.

All figures are normalised per rank (divided by ``nprocs``) so the
breakdown of a 16-rank phase reads as "seconds of a typical rank's
wall", directly comparable to the phase duration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.obs.tracer import Span

#: Root spans of the IOR phases, by operation.
_ROOT_NAME = {"write": "ior.write", "read": "ior.read"}

WAIT_KEY = "(wait/other)"


def phase_layer_breakdown(
    spans: Iterable[Span],
    op: str,
    repetition: int,
    nprocs: int,
    wall: float,
) -> Optional[Dict[str, float]]:
    """Per-rank seconds spent exclusively in each layer during one phase.

    ``op`` is "write" or "read"; ``repetition`` selects the IOR rep the
    root spans were tagged with. Returns None when no matching spans were
    recorded (tracing disabled).
    """
    spans = list(spans)
    root_name = _ROOT_NAME.get(op)
    roots = [
        s
        for s in spans
        if s.name == root_name
        and s.kind != "i"
        and s.attrs.get("rep") == repetition
    ]
    return _exclusive_breakdown(spans, roots, nprocs, wall)


def layer_breakdown(
    spans: Iterable[Span],
    root_name: str,
    wall: float,
    nprocs: int = 1,
) -> Optional[Dict[str, float]]:
    """Exclusive-time per-layer breakdown under every ``root_name`` span.

    The generic form of :func:`phase_layer_breakdown` for subsystems
    whose phases are not IOR repetitions (e.g. the FDB archive/retrieve
    pipelines rooted at ``fdb.archive``/``fdb.retrieve``).
    """
    spans = list(spans)
    roots = [s for s in spans if s.name == root_name and s.kind != "i"]
    return _exclusive_breakdown(spans, roots, nprocs, wall)


def _exclusive_breakdown(
    spans: List[Span], roots: List[Span], nprocs: int, wall: float
) -> Optional[Dict[str, float]]:
    if not roots or nprocs <= 0:
        return None

    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None and span.kind != "i":
            children.setdefault(span.parent_id, []).append(span)

    layer_seconds: Dict[str, float] = {}
    stack = list(roots)
    seen = set()
    while stack:
        span = stack.pop()
        if span.span_id in seen:
            continue
        seen.add(span.span_id)
        kids = children.get(span.span_id, ())
        child_time = sum(k.duration for k in kids)
        # A child may outlive its parent (e.g. an RPC reply message still
        # in flight when the engine span closes); clamp at zero so one
        # layer never goes negative at another's expense.
        exclusive = max(0.0, span.duration - child_time)
        layer_seconds[span.layer] = layer_seconds.get(span.layer, 0.0) + exclusive
        stack.extend(kids)

    breakdown = {
        layer: seconds / nprocs for layer, seconds in layer_seconds.items()
    }
    covered = sum(breakdown.values())
    breakdown[WAIT_KEY] = max(0.0, wall - covered)
    return breakdown
