"""Observability: span tracing, metrics, Chrome-trace export.

Strictly opt-in: a fresh :class:`repro.sim.core.Simulator` carries
``tracer = metrics = None`` and every instrumented code path costs one
attribute check when they stay None. :func:`install` flips a simulator
to observed; ``Cluster.observe()`` is the usual entry point.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs.breakdown import phase_layer_breakdown
from repro.obs.chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry, write_metrics
from repro.obs.tracer import NULL_TRACER, Span, Tracer, tracer_of

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "tracer_of",
    "MetricsRegistry",
    "write_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "phase_layer_breakdown",
    "install",
]


def install(
    sim,
    tracing: bool = True,
    metrics: bool = True,
    seed: int = 0xDA05,
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Attach a tracer and/or metrics registry to ``sim``.

    Idempotent: already-installed instruments are kept. Returns the
    ``(tracer, registry)`` pair (entries are None when not requested).
    """
    if tracing and sim.tracer is None:
        sim.tracer = Tracer(sim, enabled=True)
    if metrics and sim.metrics is None:
        sim.metrics = MetricsRegistry(sim, seed=seed)
    return sim.tracer, sim.metrics
