"""Observability: span tracing, metrics, timeline scraping, Chrome export.

Strictly opt-in: a fresh :class:`repro.sim.core.Simulator` carries
``tracer = metrics = timeline = None`` and every instrumented code path
costs one attribute check when they stay None. :func:`install` flips a
simulator to observed; ``Cluster.observe()`` is the usual entry point.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.breakdown import layer_breakdown, phase_layer_breakdown
from repro.obs.chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.metrics import (
    MetricsRegistry,
    format_metric_name,
    parse_metric_name,
    write_metrics,
)
from repro.obs.slo import (
    SloBreach,
    SloRule,
    StallRule,
    default_rules,
    parse_rules,
    parse_slo,
)
from repro.obs.timeline import (
    DEFAULT_INTERVAL,
    TimelineScraper,
    TimeSeriesStore,
    write_timeline,
)
from repro.obs.tracer import NULL_TRACER, Span, Tracer, tracer_of

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "tracer_of",
    "MetricsRegistry",
    "format_metric_name",
    "parse_metric_name",
    "write_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "phase_layer_breakdown",
    "layer_breakdown",
    "TimelineScraper",
    "TimeSeriesStore",
    "DEFAULT_INTERVAL",
    "write_timeline",
    "SloRule",
    "StallRule",
    "SloBreach",
    "parse_slo",
    "parse_rules",
    "default_rules",
    "install",
]


def install(
    sim,
    tracing: bool = True,
    metrics: bool = True,
    seed: int = 0xDA05,
    timeline_interval: Optional[float] = None,
    slo_rules: Optional[List[object]] = None,
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Attach a tracer and/or metrics registry to ``sim``.

    Idempotent: already-installed instruments are kept. Returns the
    ``(tracer, registry)`` pair (entries are None when not requested).

    ``timeline_interval`` additionally attaches a
    :class:`~repro.obs.timeline.TimelineScraper` (``sim.timeline``)
    sampling every that-many simulated seconds — this forces metrics
    on, since the scraper has nothing to sample otherwise.
    ``slo_rules`` is a list of rule strings (see :mod:`repro.obs.slo`)
    or pre-parsed rule objects; when None, :func:`default_rules` (the
    stall watchdog) applies.
    """
    if timeline_interval is not None:
        metrics = True
    if tracing and sim.tracer is None:
        sim.tracer = Tracer(sim, enabled=True)
    if metrics and sim.metrics is None:
        sim.metrics = MetricsRegistry(sim, seed=seed)
    if timeline_interval is not None and sim.timeline is None:
        if slo_rules is None:
            rules = default_rules()
        else:
            rules = [
                parse_slo(r) if isinstance(r, str) else r for r in slo_rules
            ]
        sim.timeline = TimelineScraper(
            sim,
            sim.metrics,
            tracer=sim.tracer,
            interval=timeline_interval,
            rules=rules,
        )
    return sim.tracer, sim.metrics
