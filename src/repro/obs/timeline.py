"""Deterministic sim-time metrics scraper and time-series store.

:class:`TimelineScraper` is a recurring simulator callback that samples
the :class:`~repro.obs.metrics.MetricsRegistry` every ``interval``
simulated seconds into a :class:`TimeSeriesStore`:

* counters become per-window **rates** (``name:rate``, delta divided by
  the *actual* elapsed time since the previous sample — not the nominal
  interval, so park gaps don't inflate rates),
* gauges become instantaneous **values** (``name:value``) and
  per-window time-weighted **means** (``name:mean``, integral deltas),
* histograms become per-window **counts** (``name:count``) and
  sliding-window **quantiles** (``name:p50/p95/p99/p999``) computed
  from bucket-count deltas via the same clamp-free interpolation as
  :func:`repro.obs.metrics.bucket_quantile` — per-window tail latency,
  not just cumulative.

Zero perturbation: tick callbacks only *read* simulation state — no RNG
draws, no task scheduling, no state mutation outside the scraper's own
store — so figure outputs are byte-identical with the scraper on or
off (``tests/obs/test_timeline_determinism.py`` pins this). Scheduling
ticks does advance the simulator's event sequence counter, but the
relative FIFO order of all non-scraper events is unchanged.

Deadlock transparency: a perpetually self-rescheduling task would keep
the event heap non-empty forever and mask
:class:`~repro.errors.DeadlockError`. The scraper therefore **parks**
whenever it finds the heap empty at a tick, and is revived by a poke
from :meth:`repro.sim.core.Simulator.spawn` (``sim.timeline``). Tick
times stay aligned to ``origin + k*interval`` across park gaps.

The SLO/stall watchdog (rules from :mod:`repro.obs.slo`) is evaluated
at every tick over the freshly closed window; breaches land in the
store, in ``obs.slo.breaches``, and as ``slo.breach`` instants in the
trace.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import (
    _HIST_BUCKETS,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.slo import SloBreach, SloRule, StallRule

#: Default scrape interval in simulated seconds (10 ms).
DEFAULT_INTERVAL = 0.01

#: Points kept per series before dropping (reported, never silent).
SERIES_POINT_CAP = 100_000

#: Window-delta histograms retained per metric for sliding merges.
WINDOW_HISTORY = 64

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


class Series:
    """One named time-series with step-change compression.

    A point is recorded only when the value differs from the previous
    recorded value; before appending the change, the last suppressed
    ``(t, v)`` is flushed so step curves reconstruct exactly. The value
    at any time ``t`` is the value of the last point at or before
    ``t`` (:meth:`value_at`).
    """

    __slots__ = ("name", "kind", "points", "dropped",
                 "_last_t", "_suppressed")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.points: List[Tuple[float, float]] = []
        self.dropped = 0
        self._last_t: Optional[float] = None
        self._suppressed = False

    def record(self, t: float, v: float) -> None:
        if self.points and self.points[-1][1] == v:
            self._last_t = t
            self._suppressed = True
            return
        if self._suppressed:
            self._append(self._last_t, self.points[-1][1])
            self._suppressed = False
        self._append(t, v)
        self._last_t = t

    def _append(self, t: float, v: float) -> None:
        if len(self.points) >= SERIES_POINT_CAP:
            self.dropped += 1
            return
        self.points.append((t, v))

    def finalize(self) -> None:
        """Flush the trailing suppressed point (idempotent)."""
        if self._suppressed:
            self._append(self._last_t, self.points[-1][1])
            self._suppressed = False

    def value_at(self, t: float) -> Optional[float]:
        """Step-wise lookup: last recorded value at or before ``t``."""
        best = None
        for pt, pv in self.points:
            if pt <= t:
                best = pv
            else:
                break
        return best


class TimeSeriesStore:
    """In-memory labeled time-series + breach log, JSON-exportable."""

    def __init__(self, interval: float, origin: float = 0.0) -> None:
        self.interval = interval
        self.origin = origin
        self.series: Dict[str, Series] = {}
        self.breaches: List[SloBreach] = []
        self.n_windows = 0
        self.end = origin

    def record(self, name: str, kind: str, t: float, v: float) -> None:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name, kind)
        s.record(t, v)

    def to_json(self) -> Dict[str, Any]:
        for s in self.series.values():
            s.finalize()
        dropped = sum(s.dropped for s in self.series.values())
        return {
            "timeline_version": 1,
            "interval": self.interval,
            "start": self.origin,
            "end": self.end,
            "n_windows": self.n_windows,
            "series": {
                name: {
                    "kind": s.kind,
                    "points": [[t, v] for t, v in s.points],
                }
                for name, s in sorted(self.series.items())
            },
            "breaches": [b.to_json() for b in self.breaches],
            "dropped_points": dropped,
        }


def write_timeline(store: TimeSeriesStore, path: str) -> None:
    """Write the store as timeline JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(store.to_json(), indent=1, sort_keys=True))


class TimelineScraper:
    """Recurring sim-time sampler over a :class:`MetricsRegistry`."""

    def __init__(
        self,
        sim,
        registry: MetricsRegistry,
        tracer=None,
        interval: float = DEFAULT_INTERVAL,
        rules: Optional[List[object]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"timeline interval must be positive: {interval}")
        self.sim = sim
        self.registry = registry
        self.tracer = tracer
        self.interval = interval
        self.rules = list(rules or [])
        self.origin = sim.now
        self.store = TimeSeriesStore(interval, origin=self.origin)
        # Park/revive state: start parked, first spawn pokes us alive.
        self._parked = True
        self._k = 0  # index of the last sampled tick (origin + k*interval)
        self._scheduled_k = 0
        self._last_t = self.origin
        # Previous-sample state for window deltas.
        self._last_counters: Dict[str, float] = {}
        self._last_gauge_integrals: Dict[str, float] = {}
        self._last_hist: Dict[str, Tuple[int, List[int], float]] = {}
        # Recent window-delta histograms for sliding merges.
        self._recent_hist: Dict[str, deque] = {}
        # Current-window stats for rule evaluation.
        self._win_elapsed = 0.0
        self._win_counter_delta: Dict[str, float] = {}
        self._win_gauge_mean: Dict[str, float] = {}
        self._win_hist: Dict[str, Tuple[int, List[int], float]] = {}
        self._streaks: List[int] = [0] * len(self.rules)

    # ------------------------------------------------------------- lifecycle
    def on_activity(self) -> None:
        """Poke from ``Simulator.spawn``: revive a parked scraper.

        The next tick lands on the first grid point ``origin +
        k*interval`` strictly after ``now`` (and after the last sampled
        tick, so a window is never sampled twice).
        """
        if not self._parked:
            return
        self._parked = False
        now = self.sim.now
        k = int((now - self.origin) / self.interval + 1e-9) + 1
        k = max(k, self._k + 1)
        self._schedule_tick(k)

    def _schedule_tick(self, k: int) -> None:
        self._scheduled_k = k
        t = self.origin + k * self.interval
        self.sim.schedule(max(t - self.sim.now, 0.0), self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        self._sample(now)
        self._k = self._scheduled_k
        # Park when nothing else is pending: staying scheduled would
        # keep the heap non-empty forever and mask DeadlockError.
        if self.sim._heap:
            self._schedule_tick(self._k + 1)
        else:
            self._parked = True

    # -------------------------------------------------------------- sampling
    def _sample(self, now: float) -> None:
        reg = self.registry
        store = self.store
        elapsed = now - self._last_t
        self._win_elapsed = elapsed
        self._win_counter_delta.clear()
        self._win_gauge_mean.clear()
        self._win_hist.clear()

        for name, c in reg.counters.items():
            last = self._last_counters.get(name, 0.0)
            delta = c.value - last
            self._last_counters[name] = c.value
            self._win_counter_delta[name] = delta
            rate = delta / elapsed if elapsed > 0 else 0.0
            store.record(f"{name}:rate", "rate", now, rate)

        for name, g in reg.gauges.items():
            integral = g.integral + g.value * (now - g.last_t)
            last = self._last_gauge_integrals.get(name, 0.0)
            self._last_gauge_integrals[name] = integral
            mean = (integral - last) / elapsed if elapsed > 0 else g.value
            self._win_gauge_mean[name] = mean
            store.record(f"{name}:value", "value", now, g.value)
            store.record(f"{name}:mean", "mean", now, mean)

        for name, h in reg.histograms.items():
            lcount, lbuckets, ltotal = self._last_hist.get(
                name, (0, [0] * _HIST_BUCKETS, 0.0)
            )
            dcount = h.count - lcount
            dbuckets = [b - lb for b, lb in zip(h.buckets, lbuckets)]
            dtotal = h.total - ltotal
            self._last_hist[name] = (h.count, list(h.buckets), h.total)
            self._win_hist[name] = (dcount, dbuckets, dtotal)
            recent = self._recent_hist.get(name)
            if recent is None:
                recent = self._recent_hist[name] = deque(maxlen=WINDOW_HISTORY)
            recent.append((dcount, dbuckets))
            store.record(f"{name}:count", "count", now, float(dcount))
            if dcount > 0:
                for label, q in _QUANTILES:
                    store.record(
                        f"{name}:{label}", "quantile", now,
                        bucket_quantile(dbuckets, dcount, q),
                    )

        store.n_windows += 1
        store.end = now
        self._last_t = now
        self._evaluate_rules(now)

    # ------------------------------------------------------------ windows API
    def sliding_quantile(self, name: str, q: float,
                         nwindows: int = 1) -> Optional[float]:
        """Quantile over the merged bucket deltas of the last
        ``nwindows`` sampled windows of histogram ``name`` (None when
        the metric is unknown or the merged window is empty)."""
        recent = self._recent_hist.get(name)
        if not recent:
            return None
        merged = [0] * _HIST_BUCKETS
        count = 0
        for dcount, dbuckets in list(recent)[-nwindows:]:
            count += dcount
            for i, b in enumerate(dbuckets):
                merged[i] += b
        if count == 0:
            return None
        return bucket_quantile(merged, count, q)

    def window_stat(self, metric: str, stat: str) -> Optional[float]:
        """Stat of ``metric`` over the last closed window (rule lookup).

        ``rate`` → counter rate; ``value`` → gauge value; ``mean`` →
        gauge window mean, else histogram window mean; ``count`` →
        histogram window count; ``p50/p95/p99/p999`` → histogram window
        quantile. None when undefined (unknown metric, empty window).
        """
        if stat == "rate":
            delta = self._win_counter_delta.get(metric)
            if delta is None:
                return None
            return delta / self._win_elapsed if self._win_elapsed > 0 else 0.0
        if stat == "value":
            g = self.registry.gauges.get(metric)
            return None if g is None else g.value
        if stat == "mean":
            if metric in self._win_gauge_mean:
                return self._win_gauge_mean[metric]
            hist = self._win_hist.get(metric)
            if hist is None or hist[0] == 0:
                return None
            return hist[2] / hist[0]
        if stat == "count":
            hist = self._win_hist.get(metric)
            return None if hist is None else float(hist[0])
        q = {label: qv for label, qv in _QUANTILES}.get(stat)
        if q is None:
            return None
        hist = self._win_hist.get(metric)
        if hist is None or hist[0] == 0:
            return None
        return bucket_quantile(hist[1], hist[0], q)

    # ----------------------------------------------------------------- rules
    def _evaluate_rules(self, now: float) -> None:
        for i, rule in enumerate(self.rules):
            if isinstance(rule, StallRule):
                progress = self._win_counter_delta.get(rule.progress)
                guard = self._win_gauge_mean.get(rule.guard)
                violated = rule.violated(progress, guard)
                value, threshold = progress, None
                metric, stat = rule.progress, "rate"
            else:
                value = self.window_stat(rule.metric, rule.stat)
                violated = rule.violated(value)
                threshold = rule.threshold
                metric, stat = rule.metric, rule.stat
            if not violated:
                self._streaks[i] = 0
                continue
            self._streaks[i] += 1
            # Breach once, on the transition to the N-th consecutive
            # violating window; a clean window re-arms the rule.
            if self._streaks[i] != rule.windows:
                continue
            breach = SloBreach(
                time=now, rule=rule.text, kind=rule.kind,
                metric=metric, stat=stat, windows=rule.windows,
                value=value, threshold=threshold,
            )
            if isinstance(rule, StallRule):
                breach.extra["guard"] = rule.guard
                breach.extra["guard_mean"] = self._win_gauge_mean.get(
                    rule.guard
                )
            self.store.breaches.append(breach)
            self.registry.incr("obs.slo.breaches")
            if self.tracer is not None:
                self.tracer.instant(
                    "slo.breach", "obs", attrs=breach.to_json()
                )
