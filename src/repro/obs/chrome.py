"""Chrome trace-event JSON export.

Produces the JSON-object form of the trace-event format understood by
Perfetto (ui.perfetto.dev) and chrome://tracing: one "process" (pid) per
simulated node, one "thread" track (tid) per stack layer, "X" complete
events for spans, "i" instant events for markers (fault injections),
and — when a timeline store is supplied — "C" counter events so
bandwidth/queue-depth curves render alongside the spans. Timestamps are
microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Tracer

#: Track ordering top-down the way a request descends the stack.
LAYER_ORDER = [
    "ior",
    "dfuse",
    "cache",
    "mpiio",
    "hdf5",
    "dfs",
    "client",
    "rpc",
    "fabric",
    "engine",
    "vos",
    "rebuild",
    "faults",
    "obs",
]

_US = 1e6  # simulated seconds -> trace microseconds


def _layer_tid(layer: str) -> int:
    try:
        return LAYER_ORDER.index(layer)
    except ValueError:
        return len(LAYER_ORDER)


def chrome_trace(tracer: Tracer, timeline=None) -> Dict[str, Any]:
    """Build the trace-event dict for ``tracer``'s recorded spans.

    ``timeline`` (a :class:`repro.obs.timeline.TimeSeriesStore`) adds
    "C" counter events on a dedicated pid-0 "timeline" process — one
    counter track per series — so Perfetto renders the sampled curves
    above the span tracks.
    """
    nodes = sorted({span.node or "cluster" for span in tracer.spans})
    pid_of = {node: pid for pid, node in enumerate(nodes, start=1)}
    events: List[Dict[str, Any]] = []

    if timeline is not None and timeline.series:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "timeline"},
            }
        )
    for node, pid in pid_of.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": node},
            }
        )
    layers_by_node: Dict[str, set] = {}
    for span in tracer.spans:
        layers_by_node.setdefault(span.node or "cluster", set()).add(span.layer)
    for node, layers in layers_by_node.items():
        pid = pid_of[node]
        for layer in layers:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": _layer_tid(layer),
                    "args": {"name": layer},
                }
            )

    span_events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        pid = pid_of[span.node or "cluster"]
        tid = _layer_tid(span.layer)
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.kind == "i":
            span_events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "s": "p",
                    "ts": span.start * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            end = span.end if span.end is not None else span.start
            span_events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": (end - span.start) * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    if timeline is not None:
        for name, series in sorted(timeline.series.items()):
            series.finalize()
            for t, v in series.points:
                span_events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t * _US,
                        "pid": 0,
                        "tid": 0,
                        "args": {"value": v},
                    }
                )
    span_events.sort(key=lambda ev: ev["ts"])
    events.extend(span_events)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(tracer: Tracer, path: str, timeline=None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer, timeline=timeline), fh, indent=1)


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a trace document; returns a list of problems
    (empty == valid). Used by ``python -m repro.obs.validate`` and CI."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Optional[float] = None
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: ts {ts} < previous {last_ts}")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems
