"""The POSIX-ish VFS abstraction shared by DFuse and the Lustre client.

Anything written against :class:`~repro.posix.vfs.FileSystem` — the IOR
POSIX backend, the MPI-IO UFS driver, the HDF5 ``sec2`` VFD — runs
unchanged on either filesystem, which is exactly the substitution the
paper's benchmarks perform.
"""

from repro.posix.vfs import FileHandle, FileSystem, StatResult

__all__ = ["FileSystem", "FileHandle", "StatResult"]
