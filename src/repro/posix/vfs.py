"""Abstract filesystem interface (task-helper flavoured).

All operations are generators to be driven with ``yield from`` inside a
simulated task; they charge simulated time internally. Flags follow a
simplified open(2): any subset of ``{"r", "w", "creat", "trunc", "excl"}``.
Errors are :class:`~repro.errors.FsError` with errno-style names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, List, Set

from repro.daos.vos.payload import Payload


@dataclass
class StatResult:
    """Subset of ``struct stat`` the stack above needs."""

    is_dir: bool
    size: int
    mode: int = 0o644
    #: preferred I/O size (st_blksize) — DFuse reports the DFS chunk size
    blksize: int = 4096


class FileHandle:
    """An open file. All methods are task helpers."""

    def pread(self, offset: int, length: int) -> Generator:
        """Read up to ``length`` bytes at ``offset`` (short read at EOF);
        returns a :class:`Payload`."""
        raise NotImplementedError

    def pwrite(self, offset: int, data) -> Generator:
        """Write bytes/payload at ``offset``; returns bytes written."""
        raise NotImplementedError

    def fsync(self) -> Generator:
        """Flush to stable storage."""
        raise NotImplementedError

    def truncate(self, size: int) -> Generator:
        """Set the file size."""
        raise NotImplementedError

    def size(self) -> Generator:
        """Current file size in bytes."""
        raise NotImplementedError

    def close(self) -> Generator:
        """Release the handle."""
        raise NotImplementedError


class FileSystem:
    """An abstract mounted filesystem. All methods are task helpers."""

    #: preferred I/O size reported via stat
    blksize: int = 4096

    def open(self, path: str, flags: Iterable[str] = ("r",)) -> Generator:
        """Open (optionally creating) ``path``; returns a FileHandle."""
        raise NotImplementedError

    def mkdir(self, path: str) -> Generator:
        raise NotImplementedError

    def readdir(self, path: str) -> Generator:
        """Sorted list of entry names."""
        raise NotImplementedError

    def stat(self, path: str) -> Generator:
        """Returns a :class:`StatResult`."""
        raise NotImplementedError

    def unlink(self, path: str) -> Generator:
        raise NotImplementedError

    def rmdir(self, path: str) -> Generator:
        raise NotImplementedError

    def rename(self, old: str, new: str) -> Generator:
        raise NotImplementedError


def normalize(path: str) -> List[str]:
    """Split an absolute-or-relative path into clean components."""
    parts = [p for p in path.split("/") if p and p != "."]
    out: List[str] = []
    for part in parts:
        if part == "..":
            if out:
                out.pop()
        else:
            out.append(part)
    return out


def validate_flags(flags: Iterable[str]) -> Set[str]:
    flag_set = set(flags)
    unknown = flag_set - {"r", "w", "creat", "trunc", "excl"}
    if unknown:
        raise ValueError(f"unknown open flags {sorted(unknown)}")
    if not flag_set & {"r", "w"}:
        flag_set.add("r")
    return flag_set
