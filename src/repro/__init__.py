"""repro — reproduction of *DAOS as HPC Storage: Exploring Interfaces*.

This package re-implements, from scratch and in pure Python, the full
system stack exercised by Jackson & Manubens (IEEE CLUSTER 2023):

- a discrete-event simulation kernel (:mod:`repro.sim`),
- a fluid-flow network/storage contention model (:mod:`repro.network`),
- hardware models of the NEXTGenIO research system (:mod:`repro.hardware`),
- a Raft consensus implementation (:mod:`repro.consensus`),
- a simulated MPI runtime (:mod:`repro.mpi`),
- a functional DAOS object store: VOS, placement, object classes,
  pools/containers, engines and a client library (:mod:`repro.daos`),
- the DAOS File System and DFuse mount (:mod:`repro.dfs`, :mod:`repro.dfuse`),
- an MPI-IO implementation with ROMIO-style collective buffering
  (:mod:`repro.mpiio`),
- an HDF5-like self-describing file format library (:mod:`repro.hdf5`),
- a Lustre-like parallel filesystem baseline (:mod:`repro.lustre`),
- a faithful port of the IOR benchmark (:mod:`repro.ior`) plus an
  mdtest-style metadata benchmark (:mod:`repro.mdtest`),
- cluster builders and the benchmark harness used to regenerate every
  figure in the paper (:mod:`repro.cluster`, :mod:`repro.bench`).

Quickstart::

    from repro.cluster import nextgenio
    from repro.ior import IorParams, run_ior

    cluster = nextgenio(client_nodes=2)
    result = run_ior(cluster, IorParams(api="DFS", block_size="64m",
                                        transfer_size="1m",
                                        file_per_proc=True))
    print(result.summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
