"""Deterministic sim-time token bucket and the bottleneck-fraction cap.

Two QoS mechanisms live here:

* :func:`bottleneck_cap` — the *rate-cap* discipline extracted from
  :class:`repro.rebuild.throttle.RebuildThrottle`: given the
  ``(link, weight)`` pairs a flow crosses, cap it to ``fraction`` of
  its binding link's capacity. The flow network then enforces the cap
  continuously while max-min fair sharing hands the rest to everyone
  else. Best for long-lived background flows (rebuild migrations).

* :class:`TokenBucket` — the classic *issue-rate* discipline: tokens
  refill at ``rate`` per simulated second up to a ``burst`` ceiling,
  and a consumer acquires ``n`` tokens before issuing ``n`` units of
  work. Best for request-scoped traffic (per-tenant byte budgets in
  :mod:`repro.tenants`), where flows are too short for a standing cap.

The bucket runs on *debt accounting*: :meth:`TokenBucket.acquire`
always deducts immediately, and when the level goes negative the
acquirer sleeps exactly ``deficit / rate`` simulated seconds — the
time at which the refill pays the debt back. Concurrent acquirers
therefore serialise in deduction order (the simulator's deterministic
event order), long-run issue rate is bounded by ``rate``, and no RNG
is involved anywhere, so a bucketed run is a pure function of the
seed.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Tuple

from repro.errors import DerInval


def bottleneck_cap(
    weighted_links: Iterable[Tuple[object, float]], fraction: float
) -> Optional[float]:
    """Flow-rate cap: ``fraction`` of the binding link's capacity.

    The binding constraint of a flow over ``(link, weight)`` pairs is
    the link with the smallest ``capacity / weight`` ratio (a weight >
    1 means the flow crosses that link with multiplied consumption).
    Returns ``None`` — cap disabled — when ``fraction >= 1`` or no
    weighted link binds.

    This is the exact arithmetic
    :class:`repro.rebuild.throttle.RebuildThrottle` has always used;
    rebuild byte-identity across the extraction is pinned by
    ``tests/qos/test_bucket.py`` and the rebuild chaos suite.
    """
    if fraction >= 1.0:
        return None
    bottleneck = min(
        (link.capacity / weight for link, weight in weighted_links if weight > 0),
        default=None,
    )
    if bottleneck is None:
        return None
    return fraction * bottleneck


class TokenBucket:
    """Deterministic token bucket over simulated time.

    ``rate`` tokens accrue per simulated second up to ``burst``; the
    bucket starts full. ``rate=None`` disables limiting (every acquire
    is free), so call sites can keep one code path for QoS on/off.
    """

    __slots__ = ("sim", "rate", "burst", "_level", "_t")

    def __init__(self, sim, rate: Optional[float], burst: float):
        if rate is not None and rate <= 0:
            raise DerInval(f"token rate must be positive, got {rate}")
        if burst <= 0:
            raise DerInval(f"token burst must be positive, got {burst}")
        self.sim = sim
        self.rate = None if rate is None else float(rate)
        self.burst = float(burst)
        self._level = self.burst
        self._t = sim.now

    # ----------------------------------------------------------- accounting
    def _refill(self, now: float) -> None:
        if now > self._t:
            self._level = min(
                self.burst, self._level + (now - self._t) * self.rate
            )
            self._t = now

    @property
    def level(self) -> float:
        """Tokens available right now (negative while in debt)."""
        if self.rate is None:
            return self.burst
        self._refill(self.sim.now)
        return self._level

    def try_acquire(self, n: float) -> bool:
        """Take ``n`` tokens iff available without waiting."""
        if self.rate is None:
            return True
        self._refill(self.sim.now)
        if self._level < n:
            return False
        self._level -= n
        return True

    def acquire(self, n: float) -> Generator:
        """Task helper: take ``n`` tokens, sleeping until the refill
        covers any deficit. FIFO in deduction order; returns the
        simulated seconds waited."""
        if self.rate is None:
            return 0.0
        if n < 0:
            raise DerInval(f"cannot acquire {n} tokens")
        self._refill(self.sim.now)
        self._level -= n
        if self._level >= 0:
            return 0.0
        wait = -self._level / self.rate
        yield wait
        return wait

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TokenBucket rate={self.rate} burst={self.burst} "
            f"level={self._level:.1f}>"
        )
