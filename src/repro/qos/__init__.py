"""Shared QoS primitives: token buckets and bandwidth caps.

Grown out of :mod:`repro.rebuild.throttle` (PR 8): the
fraction-of-bottleneck cap that bounds rebuild traffic is the same
shape every bandwidth-governed consumer needs, and the multi-tenant
serving layer (:mod:`repro.tenants`) adds the classic token bucket on
top for per-tenant rate limiting.
"""

from repro.qos.bucket import TokenBucket, bottleneck_cap

__all__ = ["TokenBucket", "bottleneck_cap"]
