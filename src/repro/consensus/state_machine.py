"""Replicated state machines applied from the Raft log.

Commands are ``(op, *args)`` tuples. Machines must be deterministic: the
same command sequence must yield the same state on every replica — this
is checked by the consensus property tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class KvStateMachine:
    """Ordered key-value store with CAS — the rsvc building block.

    Operations::

        ("put", key, value)            -> None
        ("get", key)                   -> value | None
        ("del", key)                   -> bool (existed)
        ("cas", key, expect, value)    -> bool (swapped)
        ("inc", key, delta)            -> new integer value
        ("list", prefix)               -> sorted [keys]
    """

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}

    def apply(self, command: Tuple) -> Any:
        op = command[0]
        if op == "put":
            _, key, value = command
            self.data[key] = value
            return None
        if op == "get":
            return self.data.get(command[1])
        if op == "del":
            return self.data.pop(command[1], _MISSING) is not _MISSING
        if op == "cas":
            _, key, expect, value = command
            if self.data.get(key) == expect:
                self.data[key] = value
                return True
            return False
        if op == "inc":
            _, key, delta = command
            value = int(self.data.get(key, 0)) + delta
            self.data[key] = value
            return value
        if op == "list":
            prefix = command[1]
            return sorted(k for k in self.data if k.startswith(prefix))
        raise ValueError(f"unknown state-machine op {op!r}")

    def snapshot(self) -> Dict[str, Any]:
        return dict(self.data)


class AppendLogMachine:
    """Test helper: records every applied command in order."""

    def __init__(self) -> None:
        self.applied: List[Any] = []

    def apply(self, command: Any) -> int:
        self.applied.append(command)
        return len(self.applied)


_MISSING = object()
