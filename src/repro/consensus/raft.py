"""Raft consensus (Ongaro & Ousterhout 2014) over the simulated fabric.

The implementation covers the full core protocol:

- leader election with randomized timeouts and vote persistence,
- log replication with the AppendEntries consistency check and
  per-follower ``nextIndex`` backoff,
- commitment rules (a leader only commits entries from its own term,
  Fig. 8 of the paper),
- crash/restart: ``currentTerm``, ``votedFor`` and the log survive a
  crash (they live in the node's "persistent" attribute set); volatile
  state is rebuilt.

Omitted relative to the paper: membership changes and log compaction
(DAOS rsvc uses them operationally, but none of the benchmarked paths
exercise them; hooks are left in place).

Log indices are 1-based as in the paper; ``log[0]`` is a sentinel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import ConsensusError, NotLeaderError
from repro.network.fabric import Fabric, NodeAddr
from repro.network.ofi import Endpoint, Message
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.sim.sync import Gate

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

_proposal_ids = itertools.count(1)


@dataclass
class LogEntry:
    term: int
    command: Any
    #: id used to resolve the proposer's completion gate (leader-local)
    proposal_id: int = 0


@dataclass
class RaftConfig:
    """Timing knobs (seconds). Defaults mirror a LAN deployment."""

    election_timeout_min: float = 0.150
    election_timeout_max: float = 0.300
    heartbeat_interval: float = 0.050
    #: cost of persisting (term, vote, log entries) before responding —
    #: Optane-class media makes this nearly free, which is exactly the
    #: DAOS rsvc story.
    persist_latency: float = 5e-6
    rpc_bytes: int = 512


class RaftNode:
    """One Raft replica, driven entirely by simulated messages/timers."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        addr: NodeAddr,
        node_id: int,
        peer_names: List[str],
        apply_fn: Callable[[Any], Any],
        rng: RngStreams,
        config: Optional[RaftConfig] = None,
        reset_fn: Optional[Callable[[], Callable[[Any], Any]]] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.name = f"raft:{node_id}"
        self.peer_names = [p for p in peer_names if p != self.name]
        self.apply_fn = apply_fn
        self.reset_fn = reset_fn
        self.rng = rng
        self.config = config or RaftConfig()
        self.endpoint = Endpoint(fabric, addr, self.name)

        # Persistent state (survives crash/restart).
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log: List[LogEntry] = [LogEntry(term=0, command=None)]

        # Volatile state.
        self.state = FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint: Optional[int] = None
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self.applied_results: List[Any] = []

        #: observer record for safety checking: every (term, node_id) at
        #: which this node won an election. Not Raft state — never reset,
        #: not even by restart — so invariant checkers can assert election
        #: safety across the whole run (repro.faults.invariants).
        self.leadership_history: List[tuple] = []

        self._alive = True
        self._timer_generation = 0
        self._votes = 0
        self._proposals: Dict[int, Gate] = {}
        self._main_task = sim.spawn(self._main_loop(), f"{self.name}:main")
        self._arm_election_timer()

    # ------------------------------------------------------------------ utils
    @property
    def last_log_index(self) -> int:
        return len(self.log) - 1

    @property
    def last_log_term(self) -> int:
        return self.log[-1].term

    @property
    def is_leader(self) -> bool:
        return self._alive and self.state == LEADER

    def _quorum(self) -> int:
        return (len(self.peer_names) + 1) // 2 + 1

    def _send(self, dst: str, kind: str, body: dict) -> None:
        if not self._alive:
            return
        body = dict(body)
        body["kind"] = kind
        body["from"] = self.name
        body["from_id"] = self.node_id
        self.endpoint.send(dst, body, nbytes=self.config.rpc_bytes, tag="raft")

    # ------------------------------------------------------------------ timers
    def _arm_election_timer(self) -> None:
        self._timer_generation += 1
        generation = self._timer_generation
        delay = self.rng.uniform(
            f"raft:{self.node_id}:eto",
            self.config.election_timeout_min,
            self.config.election_timeout_max,
        )
        self.sim.schedule(delay, self._election_timeout, generation)

    def _election_timeout(self, generation: int) -> None:
        if not self._alive or generation != self._timer_generation:
            return
        if self.state != LEADER:
            self._start_election()
        self._arm_election_timer()

    def _heartbeat_tick(self, generation: int) -> None:
        if not self._alive or generation != self._timer_generation:
            return
        if self.state == LEADER:
            self._broadcast_append_entries()
            self.sim.schedule(
                self.config.heartbeat_interval, self._heartbeat_tick, generation
            )

    # ------------------------------------------------------------------ election
    def _start_election(self) -> None:
        self.state = CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._votes = 1
        self.leader_hint = None
        for peer in self.peer_names:
            self._send(
                peer,
                "request_vote",
                {
                    "term": self.current_term,
                    "last_log_index": self.last_log_index,
                    "last_log_term": self.last_log_term,
                },
            )
        if self._votes >= self._quorum():  # single-node cluster
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = LEADER
        self.leader_hint = self.node_id
        self.leadership_history.append((self.current_term, self.node_id))
        for peer in self.peer_names:
            self.next_index[peer] = self.last_log_index + 1
            self.match_index[peer] = 0
        # A fresh timer generation ends the election timer's relevance and
        # seeds the heartbeat loop.
        self._timer_generation += 1
        self._broadcast_append_entries()
        self.sim.schedule(
            self.config.heartbeat_interval,
            self._heartbeat_tick,
            self._timer_generation,
        )

    def _step_down(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        if self.state != FOLLOWER:
            self.state = FOLLOWER
            self._fail_pending_proposals()
        self._arm_election_timer()

    def _fail_pending_proposals(self) -> None:
        proposals, self._proposals = self._proposals, {}
        for gate in proposals.values():
            gate.open(("err", NotLeaderError(self.leader_hint)))

    # ------------------------------------------------------------------ replication
    def _broadcast_append_entries(self) -> None:
        for peer in self.peer_names:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: str) -> None:
        next_idx = self.next_index.get(peer, self.last_log_index + 1)
        prev_index = next_idx - 1
        prev_term = self.log[prev_index].term if prev_index < len(self.log) else 0
        entries = [
            (e.term, e.command, e.proposal_id) for e in self.log[next_idx:]
        ]
        self._send(
            peer,
            "append_entries",
            {
                "term": self.current_term,
                "prev_index": prev_index,
                "prev_term": prev_term,
                "entries": entries,
                "leader_commit": self.commit_index,
            },
        )

    # ------------------------------------------------------------------ main loop
    def _main_loop(self) -> Generator:
        while True:
            message: Message = yield self.endpoint.recv(tag="raft")
            if not self._alive:
                continue
            body = message.payload
            kind = body["kind"]
            if body["term"] > self.current_term:
                self._step_down(body["term"])
                yield self.config.persist_latency
            if kind == "request_vote":
                yield from self._on_request_vote(body)
            elif kind == "request_vote_resp":
                self._on_request_vote_resp(body)
            elif kind == "append_entries":
                yield from self._on_append_entries(body)
            elif kind == "append_entries_resp":
                self._on_append_entries_resp(body)

    def _on_request_vote(self, body: dict) -> Generator:
        grant = False
        if body["term"] >= self.current_term:
            log_ok = body["last_log_term"] > self.last_log_term or (
                body["last_log_term"] == self.last_log_term
                and body["last_log_index"] >= self.last_log_index
            )
            if log_ok and self.voted_for in (None, body["from"]):
                grant = True
                self.voted_for = body["from"]
                yield self.config.persist_latency
                self._arm_election_timer()
        self._send(
            body["from"],
            "request_vote_resp",
            {"term": self.current_term, "granted": grant},
        )

    def _on_request_vote_resp(self, body: dict) -> None:
        if self.state != CANDIDATE or body["term"] != self.current_term:
            return
        if body["granted"]:
            self._votes += 1
            if self._votes >= self._quorum():
                self._become_leader()

    def _on_append_entries(self, body: dict) -> Generator:
        success = False
        match_index = 0
        if body["term"] == self.current_term:
            if self.state != FOLLOWER:
                self.state = FOLLOWER
                self._fail_pending_proposals()
            self.leader_hint = body["from_id"]
            self._arm_election_timer()
            prev_index = body["prev_index"]
            if prev_index < len(self.log) and self.log[prev_index].term == body[
                "prev_term"
            ]:
                success = True
                index = prev_index
                for term, command, proposal_id in body["entries"]:
                    index += 1
                    if index < len(self.log):
                        if self.log[index].term != term:
                            del self.log[index:]  # conflict: truncate
                            self.log.append(LogEntry(term, command, proposal_id))
                    else:
                        self.log.append(LogEntry(term, command, proposal_id))
                if body["entries"]:
                    yield self.config.persist_latency
                match_index = index
                if body["leader_commit"] > self.commit_index:
                    self.commit_index = min(
                        body["leader_commit"], self.last_log_index
                    )
                    self._apply_committed()
        self._send(
            body["from"],
            "append_entries_resp",
            {
                "term": self.current_term,
                "success": success,
                "match_index": match_index,
            },
        )

    def _on_append_entries_resp(self, body: dict) -> None:
        if self.state != LEADER or body["term"] != self.current_term:
            return
        peer = body["from"]
        if body["success"]:
            self.match_index[peer] = max(
                self.match_index.get(peer, 0), body["match_index"]
            )
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit_index()
        else:
            # Consistency check failed: back off and retry immediately.
            self.next_index[peer] = max(1, self.next_index.get(peer, 1) - 1)
            self._send_append_entries(peer)

    def _advance_commit_index(self) -> None:
        for index in range(self.last_log_index, self.commit_index, -1):
            if self.log[index].term != self.current_term:
                break  # Fig. 8: only commit own-term entries directly
            replicas = 1 + sum(
                1 for m in self.match_index.values() if m >= index
            )
            if replicas >= self._quorum():
                self.commit_index = index
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log[self.last_applied]
            result = self.apply_fn(entry.command)
            self.applied_results.append((self.last_applied, entry.command))
            gate = self._proposals.pop(entry.proposal_id, None)
            if gate is not None:
                gate.open(("ok", result))

    # ------------------------------------------------------------------ client API
    def propose(self, command: Any) -> Gate:
        """Leader-side: append ``command``; the gate opens ('ok', result)
        once the entry commits and applies, or ('err', exc) on loss of
        leadership. Raises :class:`NotLeaderError` immediately if this
        node is not the leader."""
        if not self.is_leader:
            raise NotLeaderError(self.leader_hint)
        proposal_id = next(_proposal_ids)
        gate = Gate(self.sim)
        self._proposals[proposal_id] = gate
        self.log.append(LogEntry(self.current_term, command, proposal_id))
        if self._quorum() == 1:
            self.commit_index = self.last_log_index
            self._apply_committed()
        else:
            self._broadcast_append_entries()
        return gate

    # ------------------------------------------------------------------ failure injection
    def crash(self) -> None:
        """Stop processing; volatile state will be lost on restart."""
        self._alive = False
        self._fail_pending_proposals()

    def restart(self) -> None:
        """Recover with persistent state only, per the Raft paper.

        The state machine is volatile, so it must be rebuilt: recovery
        resets it (via ``reset_fn``) and re-applies the log from the start
        as the commit index re-advances.
        """
        if self._alive:
            raise ConsensusError(f"{self.name} is not crashed")
        self._alive = True
        self.state = FOLLOWER
        if self.reset_fn is not None:
            self.apply_fn = self.reset_fn()
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint = None
        self.next_index = {}
        self.match_index = {}
        self._votes = 0
        self.applied_results = []
        self._arm_election_timer()


class RaftCluster:
    """Convenience wrapper building ``n`` replicas and tracking them."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        addrs: List[NodeAddr],
        state_machine_factory: Callable[[], Any],
        rng: Optional[RngStreams] = None,
        config: Optional[RaftConfig] = None,
    ):
        self.sim = sim
        self.rng = rng or RngStreams()
        names = [f"raft:{i}" for i in range(len(addrs))]
        self.machines = [state_machine_factory() for _ in addrs]
        self.nodes: List[RaftNode] = []
        for i, addr in enumerate(addrs):

            def make_reset(index: int):
                def reset() -> Callable[[Any], Any]:
                    self.machines[index] = state_machine_factory()
                    return self.machines[index].apply

                return reset

            self.nodes.append(
                RaftNode(
                    sim,
                    fabric,
                    addr,
                    i,
                    names,
                    self.machines[i].apply,
                    self.rng,
                    config,
                    reset_fn=make_reset(i),
                )
            )

    def leader(self) -> Optional[RaftNode]:
        leaders = [n for n in self.nodes if n.is_leader]
        if len(leaders) > 1:
            # Possible transiently across terms; the highest term wins.
            leaders.sort(key=lambda n: n.current_term)
            return leaders[-1]
        return leaders[0] if leaders else None

    def wait_leader(self) -> Generator:
        """Task helper: poll until some node is leader; returns it."""
        while True:
            leader = self.leader()
            if leader is not None:
                return leader
            yield 0.01
