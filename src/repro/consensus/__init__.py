"""Raft consensus and the replicated state machine used by DAOS services.

DAOS keeps pool and container metadata in *replicated services* (rsvc)
whose ground truth is a Raft log (the real implementation embeds a fork of
willemt/raft). This package provides a from-scratch Raft implementation —
leader election with randomized timeouts, log replication, commitment,
crash/restart with durable state — running over the simulated fabric, plus
a key-value state machine and a client helper that tracks the leader.
"""

from repro.consensus.raft import RaftNode, RaftCluster
from repro.consensus.state_machine import KvStateMachine
from repro.consensus.rsvc import ReplicatedService, RsvcClient

__all__ = [
    "RaftNode",
    "RaftCluster",
    "KvStateMachine",
    "ReplicatedService",
    "RsvcClient",
]
