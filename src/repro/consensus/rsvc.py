"""Replicated service wrapper: the DAOS "rsvc" pattern.

A :class:`ReplicatedService` owns a Raft cluster whose state machine holds
service metadata (pool maps, container indices). :class:`RsvcClient` is
the client-side helper every DAOS client embeds: it remembers the last
known leader, retries on :class:`NotLeaderError` using the hint, and waits
out elections — so callers just do ``result = yield from client.invoke(cmd)``.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.consensus.raft import RaftCluster, RaftConfig, RaftNode
from repro.consensus.state_machine import KvStateMachine
from repro.errors import ConsensusError, NotLeaderError
from repro.network.fabric import Fabric, NodeAddr
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams


class ReplicatedService:
    """A Raft-backed KV metadata service spread over ``addrs``."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        addrs: List[NodeAddr],
        rng: Optional[RngStreams] = None,
        config: Optional[RaftConfig] = None,
    ):
        self.sim = sim
        self.cluster = RaftCluster(
            sim, fabric, addrs, KvStateMachine, rng=rng, config=config
        )

    @property
    def nodes(self) -> List[RaftNode]:
        return self.cluster.nodes

    def leader(self) -> Optional[RaftNode]:
        return self.cluster.leader()

    def machine_of(self, node: RaftNode) -> KvStateMachine:
        return self.cluster.machines[node.node_id]


class RsvcClient:
    """Leader-tracking client for a :class:`ReplicatedService`.

    The simulation shortcut: clients reach replicas through direct object
    references rather than extra RPC hops (the Raft messages themselves
    *do* traverse the simulated fabric). The one-way metadata RPC cost is
    charged explicitly via ``op_latency`` so metadata-heavy workloads
    still see realistic service times.
    """

    def __init__(
        self,
        service: ReplicatedService,
        op_latency: float = 20e-6,
        retry_delay: float = 0.02,
        max_retries: int = 200,
    ):
        self.service = service
        self.sim = service.sim
        self.op_latency = op_latency
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self._known_leader: Optional[RaftNode] = None

    def _pick(self) -> Optional[RaftNode]:
        if self._known_leader is not None and self._known_leader.is_leader:
            return self._known_leader
        return self.service.leader()

    def invoke(self, command: Any) -> Generator:
        """Task helper: replicate ``command`` and return its apply result."""
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.max_retries:
                raise ConsensusError(
                    f"metadata op failed after {self.max_retries} retries"
                )
            node = self._pick()
            if node is None:
                yield self.retry_delay
                continue
            yield self.op_latency
            try:
                gate = node.propose(command)
            except NotLeaderError as exc:
                self._known_leader = None
                if exc.hint is not None:
                    self._known_leader = self.service.nodes[exc.hint]
                yield self.retry_delay
                continue
            status, value = yield gate
            if status == "ok":
                self._known_leader = node
                return value
            self._known_leader = None
            yield self.retry_delay
