"""``python -m repro.tenants`` entry point."""

from repro.tenants.cli import main

raise SystemExit(main())
