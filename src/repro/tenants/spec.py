"""Tenant and workload specifications for the serving layer.

A *tenant* is one logical user of the shared storage system: an
identity, an offered-load description (arrival rate + workload shape),
and optional QoS terms (a byte-rate budget enforced by a
:class:`~repro.qos.TokenBucket`). Workloads come in the three shapes
the ECMWF follow-up papers observe contending on shared DAOS pools:

* :class:`BulkWork` — an IOR-style streaming transfer: one fresh array
  object, written (and optionally read back) in ``xfer``-sized pieces,
  pipelined through an event queue.
* :class:`KvBurstWork` — a burst of small-object KV puts/gets against
  the tenant's own KV index (the FDB field-index pattern).
* :class:`MetaStormWork` — a metadata storm: a run of object creates
  (OID allocation + first record), the mdtest-shaped load that stresses
  the metadata path rather than the wire.

Specs are plain frozen dataclasses so a tenant fleet is hashable,
comparable and trivially serialisable; :func:`make_tenants` builds a
deterministic fleet (round-robin over a weighted mix — no RNG, so the
fleet composition never perturbs seeded arrival draws).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import DerInval
from repro.units import KiB, MiB

#: Nominal QoS byte charge for one metadata op (OID alloc + record).
META_OP_BYTES = 4 * KiB


@dataclass(frozen=True)
class BulkWork:
    """IOR-style bulk transfer: ``nbytes`` written in ``xfer`` pieces."""

    nbytes: int = 256 * KiB
    xfer: int = 64 * KiB
    read_back: bool = False

    kind = "bulk"

    @property
    def qos_bytes(self) -> int:
        return self.nbytes * (2 if self.read_back else 1)


@dataclass(frozen=True)
class KvBurstWork:
    """Small-object KV burst: ``n_ops`` puts then reads of the same keys."""

    n_ops: int = 8
    value_bytes: int = 256
    keyspace: int = 64

    kind = "kv"

    @property
    def qos_bytes(self) -> int:
        return self.n_ops * self.value_bytes


@dataclass(frozen=True)
class MetaStormWork:
    """Metadata storm: ``n_ops`` object creates (OID alloc + record)."""

    n_ops: int = 8

    kind = "meta"

    @property
    def qos_bytes(self) -> int:
        return self.n_ops * META_OP_BYTES


Work = Union[BulkWork, KvBurstWork, MetaStormWork]

#: The default mixed fleet: mostly bulk, a KV-burst population, and a
#: metadata-storm population — the "many mixed workloads" regime.
DEFAULT_MIX: Tuple[Tuple[Work, int], ...] = (
    (BulkWork(), 2),
    (KvBurstWork(), 1),
    (MetaStormWork(), 1),
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: identity, offered load, and QoS terms."""

    id: str
    workload: Work = field(default_factory=BulkWork)
    #: open-loop arrival rate, jobs per simulated second
    rate: float = 2.0
    #: byte-rate budget when QoS is on (None -> serving default)
    qos_bw: Optional[float] = None
    #: token burst when QoS is on (None -> serving default)
    qos_burst: Optional[float] = None

    def __post_init__(self):
        if not self.id or any(ch in self.id for ch in ",{}= "):
            raise DerInval(
                f"tenant id {self.id!r} must be non-empty and free of "
                "metric-label reserved characters"
            )
        if self.rate <= 0:
            raise DerInval(f"tenant {self.id}: rate must be positive")


def make_tenants(
    n: int,
    rate: float = 2.0,
    mix: Sequence[Tuple[Work, int]] = DEFAULT_MIX,
    qos_bw: Optional[float] = None,
    prefix: str = "t",
) -> List[TenantSpec]:
    """A deterministic fleet of ``n`` tenants.

    Workloads are dealt round-robin from the weighted ``mix`` (weights
    are small integers: a ``(work, 2)`` entry appears twice per cycle),
    so fleet composition is a pure function of the arguments.
    """
    if n <= 0:
        raise DerInval(f"tenant count must be positive, got {n}")
    cycle: List[Work] = []
    for work, weight in mix:
        if weight < 0:
            raise DerInval(f"mix weight must be >= 0, got {weight}")
        cycle.extend([work] * weight)
    if not cycle:
        raise DerInval("tenant mix is empty")
    width = len(str(n - 1))
    return [
        TenantSpec(
            id=f"{prefix}{i:0{width}d}",
            workload=cycle[i % len(cycle)],
            rate=rate,
            qos_bw=qos_bw,
        )
        for i in range(n)
    ]


def mix_by_kind(tenants: Sequence[TenantSpec]) -> Dict[str, int]:
    """Tenant count per workload kind (report/debug helper)."""
    counts: Dict[str, int] = {}
    for tenant in tenants:
        kind = tenant.workload.kind
        counts[kind] = counts.get(kind, 0) + 1
    return counts
