"""``repro-tenants``: multi-tenant serving runs from the command line.

Boots a cluster, builds a tenant fleet, replays an open-loop horizon
and prints the serving report::

    python -m repro.tenants --tenants 50 --rate 2 --duration 20 --qos
    python -m repro.tenants --tenants 8 --chaos --slo \\
        'tenant.request.latency p99 < 0.5 over 3 windows'
    python -m repro.tenants --trace arrivals.json --report-out report.json

``--chaos`` excludes one storage target mid-run and reintegrates it
later, so rebuild/resync traffic competes with tenant traffic.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.tenants.arrivals import PoissonArrivals, TraceArrivals
from repro.tenants.dispatcher import Dispatcher, ServingConfig
from repro.tenants.report import build_report, render_report
from repro.tenants.spec import (
    DEFAULT_MIX,
    BulkWork,
    KvBurstWork,
    MetaStormWork,
    make_tenants,
)
from repro.units import MiB

#: --mix choices
MIXES = {
    "default": DEFAULT_MIX,
    "bulk": ((BulkWork(), 1),),
    "kv": ((KvBurstWork(), 1),),
    "meta": ((MetaStormWork(), 1),),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tenants",
        description="multi-tenant serving on the simulated DAOS stack",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument("--tenants", type=int, default=16,
                       help="tenant count (default 16)")
    fleet.add_argument("--rate", type=float, default=2.0,
                       help="per-tenant arrival rate, jobs/s (default 2)")
    fleet.add_argument("--mix", choices=sorted(MIXES), default="default",
                       help="workload mix (default: bulk/kv/meta blend)")
    fleet.add_argument("--duration", type=float, default=20.0,
                       help="serving horizon in simulated seconds")
    fleet.add_argument("--trace", metavar="PATH",
                       help="replay arrivals from a JSON trace instead of "
                            "the seeded Poisson process")
    qos = parser.add_argument_group("admission and QoS")
    qos.add_argument("--qos", action="store_true",
                     help="enable per-tenant byte-rate budgets")
    qos.add_argument("--qos-bw", type=float, default=8 * MiB,
                     metavar="BYTES_PER_S",
                     help="default per-tenant budget (default 8 MiB/s)")
    qos.add_argument("--admit", type=int, default=64, metavar="N",
                     help="global in-flight job bound (default 64)")
    qos.add_argument("--admit-per-tenant", type=int, default=4, metavar="N",
                     help="per-tenant in-flight bound (default 4)")
    qos.add_argument("--aio-depth", type=int, default=4, metavar="N",
                     help="per-job event-queue depth (default 4)")
    geom = parser.add_argument_group("cluster geometry")
    geom.add_argument("--servers", type=int, default=2)
    geom.add_argument("--clients", type=int, default=2)
    geom.add_argument("--pools", type=int, default=1)
    geom.add_argument("--containers", type=int, default=4)
    geom.add_argument("--oclass", default="S1")
    geom.add_argument("--seed", type=int, default=0xDA05)
    geom.add_argument("--chaos", action="store_true",
                      help="exclude a target mid-run and reintegrate it, "
                           "racing rebuild traffic against tenants")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--slo", action="append", default=[], metavar="RULE",
                     help="SLO/stall rule per scrape window, e.g. "
                          "'tenant.request.latency{tenant=t00} p99 < 0.5 "
                          "over 3 windows'; repeatable")
    obs.add_argument("--timeline-interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="scrape interval in simulated seconds (default 1)")
    obs.add_argument("--timeline-out", metavar="PATH",
                     help="write the run's time-series JSON")
    obs.add_argument("--report-out", metavar="PATH",
                     help="write the serving report JSON")
    return parser


def run_serving(args) -> dict:
    """Boot, serve, report; returns ``(report, cluster)``."""
    from repro.cluster import build_cluster

    cluster = build_cluster(
        server_nodes=args.servers, client_nodes=args.clients,
        seed=args.seed,
    )
    cluster.observe(
        tracing=False,
        metrics=True,
        timeline_interval=args.timeline_interval,
        slo_rules=args.slo or None,
    )
    fleet = make_tenants(
        args.tenants, rate=args.rate, mix=MIXES[args.mix],
    )
    if args.trace:
        arrivals = TraceArrivals.from_file(args.trace)
    else:
        arrivals = PoissonArrivals(cluster.rng)
    config = ServingConfig(
        duration=args.duration,
        qos_enabled=args.qos,
        default_qos_bw=args.qos_bw,
        aio_depth=args.aio_depth,
        max_inflight=args.admit,
        max_inflight_per_tenant=args.admit_per_tenant,
        n_pools=args.pools,
        n_containers=args.containers,
        oclass=args.oclass,
    )
    dispatcher = Dispatcher(cluster, fleet, arrivals, config)
    if args.chaos:
        from repro.faults import ExcludeTarget, FaultSchedule, ReintegrateTarget

        schedule = (
            FaultSchedule()
            .at(args.duration * 0.25, ExcludeTarget(tid=0))
            .at(args.duration * 0.50, ReintegrateTarget(tid=0))
        )
        cluster.inject(schedule)
    result = cluster.run(dispatcher.serve())
    store = cluster.sim.timeline.store if cluster.sim.timeline else None
    return build_report(result, store=store), cluster


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report, cluster = run_serving(args)
    print(render_report(report))
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.report_out}", file=sys.stderr)
    if args.timeline_out:
        from repro.obs import write_timeline

        write_timeline(cluster.sim.timeline.store, args.timeline_out)
        print(f"timeline written to {args.timeline_out}", file=sys.stderr)
    n_breaches = sum(len(v) for v in report["slo_breaches"].values())
    return 1 if n_breaches else 0


if __name__ == "__main__":  # pragma: no cover - exercised via module main
    raise SystemExit(main())
