"""Serving-run reports: exact tails, fairness, per-tenant SLO breaches.

The dispatcher keeps *exact* per-tenant latency samples, so tail
percentiles here are nearest-rank order statistics over the real sample
set — not the log2-bucket estimates the timeline scraper publishes.
Both views matter: the exact ones for run-level assertions and tables,
the bucketed per-window ones for SLO rules during the run.

Fairness is the Jain index over per-tenant delivered bytes,

    J = (sum x)^2 / (n * sum x^2),

which is 1.0 when every tenant gets the same share and 1/n when one
tenant gets everything. Tenants that never arrived are excluded (they
offered no load, so they cannot be treated as starved).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import parse_metric_name
from repro.units import fmt_size, fmt_time

#: Quantiles the report always publishes (stat key -> quantile).
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


def exact_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample list."""
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if q <= 0.0:
        return sorted_values[0]
    rank = math.ceil(q * n)
    return sorted_values[min(n - 1, max(0, rank - 1))]


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index; 1.0 for the empty or all-zero allocation
    (nothing was delivered, so nobody was favoured)."""
    n = len(shares)
    if n == 0:
        return 1.0
    total = float(sum(shares))
    sumsq = float(sum(x * x for x in shares))
    if sumsq == 0.0:
        return 1.0
    return (total * total) / (n * sumsq)


def breaches_by_tenant(store) -> Dict[str, List[dict]]:
    """Group a timeline store's SLO breaches by the ``tenant`` label of
    the breached metric; fleet-level breaches land under ``""``."""
    grouped: Dict[str, List[dict]] = {}
    if store is None:
        return grouped
    for breach in store.breaches:
        try:
            _base, labels = parse_metric_name(breach.metric)
        except ValueError:
            labels = {}
        grouped.setdefault(labels.get("tenant", ""), []).append(
            breach.to_json()
        )
    return grouped


def build_report(result: dict, store=None) -> dict:
    """Derive the serving report from ``Dispatcher.result()`` output.

    ``store`` is the optional :class:`~repro.obs.timeline.TimeSeriesStore`
    of the run (adds per-tenant SLO breach grouping). The returned dict
    is JSON-serialisable and a pure function of its inputs — no wall
    clock, no environment — so same-seed runs compare byte-identical.
    """
    tenants = result["tenants"]
    per_tenant: Dict[str, dict] = {}
    active_bytes: List[float] = []
    all_latencies: List[float] = []
    totals = {"arrivals": 0, "admitted": 0, "rejected": 0,
              "completed": 0, "failed": 0, "bytes": 0.0}
    breaches = breaches_by_tenant(store)
    for tid in sorted(tenants):
        t = tenants[tid]
        lat = sorted(t["latencies"])
        all_latencies.extend(lat)
        entry = {
            "kind": t["kind"],
            "arrivals": t["arrivals"],
            "admitted": t["admitted"],
            "rejected": t["rejected"],
            "completed": t["completed"],
            "failed": t["failed"],
            "bytes": t["bytes"],
            "qos_waited": t.get("qos_waited", 0.0),
            "latency": _latency_stats(lat),
            "slo_breaches": len(breaches.get(tid, ())),
        }
        per_tenant[tid] = entry
        for key in ("arrivals", "admitted", "rejected", "completed",
                    "failed", "bytes"):
            totals[key] += t[key]
        if t["arrivals"] > 0:
            active_bytes.append(t["bytes"])
    all_latencies.sort()
    duration = result["config"]["duration"]
    report = {
        "config": dict(result["config"]),
        "totals": totals,
        "rejection_rate": (
            totals["rejected"] / totals["arrivals"]
            if totals["arrivals"] else 0.0
        ),
        "latency": _latency_stats(all_latencies),
        "fairness_bytes": jain_fairness(active_bytes),
        "throughput": totals["bytes"] / duration if duration > 0 else 0.0,
        "tenants": per_tenant,
        "slo_breaches": {
            tid: events for tid, events in sorted(breaches.items())
        },
        "end_time": result["end_time"],
    }
    return report


def _latency_stats(sorted_latencies: List[float]) -> dict:
    n = len(sorted_latencies)
    stats = {
        "count": n,
        "mean": (sum(sorted_latencies) / n) if n else 0.0,
        "max": sorted_latencies[-1] if n else 0.0,
    }
    for key, q in QUANTILES:
        stats[key] = exact_quantile(sorted_latencies, q)
    return stats


def render_report(report: dict, max_rows: int = 12) -> str:
    """Terminal-friendly rendering of :func:`build_report` output."""
    cfg = report["config"]
    totals = report["totals"]
    lat = report["latency"]
    lines = [
        f"tenants: {cfg['n_tenants']} over {fmt_time(cfg['duration'])} "
        f"(QoS {'on' if cfg['qos_enabled'] else 'off'})",
        f"  jobs: {totals['arrivals']} arrived, {totals['admitted']} "
        f"admitted, {totals['rejected']} rejected "
        f"({100.0 * report['rejection_rate']:.1f}%), "
        f"{totals['completed']} completed, {totals['failed']} failed",
        f"  delivered: {fmt_size(int(totals['bytes']))} "
        f"({fmt_size(int(report['throughput']))}/s), "
        f"fairness (Jain, bytes) {report['fairness_bytes']:.3f}",
        f"  latency: p50 {fmt_time(lat['p50'])}  p95 {fmt_time(lat['p95'])} "
        f" p99 {fmt_time(lat['p99'])}  p999 {fmt_time(lat['p999'])} "
        f" max {fmt_time(lat['max'])}",
    ]
    n_breaches = sum(len(v) for v in report["slo_breaches"].values())
    if n_breaches:
        lines.append(f"  SLO breaches: {n_breaches}")
        for tid, events in report["slo_breaches"].items():
            who = tid or "<fleet>"
            lines.append(f"    {who}: {len(events)}")
    header = (
        f"  {'tenant':<10s} {'kind':<5s} {'arr':>5s} {'rej':>5s} "
        f"{'done':>5s} {'fail':>5s} {'p99':>9s} {'bytes':>10s}"
    )
    lines.append(header)
    shown = 0
    for tid, t in report["tenants"].items():
        if shown >= max_rows:
            lines.append(
                f"  ... {len(report['tenants']) - shown} more tenants"
            )
            break
        lines.append(
            f"  {tid:<10s} {t['kind']:<5s} {t['arrivals']:>5d} "
            f"{t['rejected']:>5d} {t['completed']:>5d} {t['failed']:>5d} "
            f"{fmt_time(t['latency']['p99']):>9s} "
            f"{fmt_size(int(t['bytes'])):>10s}"
        )
        shown += 1
    return "\n".join(lines)
