"""Multi-tenant serving: open-loop traffic, admission control, QoS.

Facade for the serving subsystem (DESIGN.md §13)::

    from repro import tenants

    cluster = small_cluster()
    cluster.observe(timeline_interval=1.0,
                    slo_rules=["tenant.request.latency p99 < 0.5 over 3 windows"])
    fleet = tenants.make_tenants(100, rate=2.0)
    d = tenants.Dispatcher(
        cluster, fleet, tenants.PoissonArrivals(cluster.rng),
        tenants.ServingConfig(duration=30.0, qos_enabled=True),
    )
    result = cluster.run(d.serve())
    report = tenants.build_report(result, store=cluster.sim.timeline.store)
"""

from repro.tenants.admission import (
    REASON_GLOBAL,
    REASON_TENANT,
    AdmissionController,
    TenantRejected,
)
from repro.tenants.arrivals import PoissonArrivals, TraceArrivals
from repro.tenants.dispatcher import Dispatcher, ServingConfig
from repro.tenants.report import (
    breaches_by_tenant,
    build_report,
    exact_quantile,
    jain_fairness,
    render_report,
)
from repro.tenants.spec import (
    DEFAULT_MIX,
    BulkWork,
    KvBurstWork,
    MetaStormWork,
    TenantSpec,
    make_tenants,
    mix_by_kind,
)

__all__ = [
    "AdmissionController",
    "BulkWork",
    "DEFAULT_MIX",
    "Dispatcher",
    "KvBurstWork",
    "MetaStormWork",
    "PoissonArrivals",
    "REASON_GLOBAL",
    "REASON_TENANT",
    "ServingConfig",
    "TenantRejected",
    "TenantSpec",
    "TraceArrivals",
    "breaches_by_tenant",
    "build_report",
    "exact_quantile",
    "jain_fairness",
    "make_tenants",
    "mix_by_kind",
    "render_report",
]
