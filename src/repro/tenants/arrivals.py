"""Open-loop arrival processes: seeded Poisson and trace replays.

Open-loop means arrival times are fixed *before* the run and do not
react to completions — the load a storage service actually faces, and
the regime where tail latency and admission control matter (a
closed-loop generator throttles itself precisely when the system is
slowest, hiding the tail; see the open-vs-closed serving literature).

Both processes yield **relative** times (seconds after serving start)
per tenant, precomputed eagerly so the draw order is a pure function of
the seed and tenant id — task interleaving during the run can never
perturb them.

* :class:`PoissonArrivals` — exponential inter-arrival gaps at the
  tenant's ``rate``, drawn from the tenant's own named
  :class:`~repro.sim.rng.RngStreams` stream
  (``tenants.arrivals:<id>``), so adding a tenant never changes another
  tenant's arrivals.
* :class:`TraceArrivals` — replay of an explicit ``(time, tenant_id)``
  schedule, loadable from a JSON trace file.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.errors import DerInval
from repro.sim.rng import RngStreams
from repro.tenants.spec import TenantSpec

#: Stream-family prefix for arrival draws.
STREAM_PREFIX = "tenants.arrivals"


class PoissonArrivals:
    """Seeded Poisson process, one independent stream per tenant."""

    def __init__(self, rng: RngStreams, stream_prefix: str = STREAM_PREFIX):
        self.rng = rng
        self.stream_prefix = stream_prefix

    def times_for(self, tenant: TenantSpec, horizon: float) -> List[float]:
        """Arrival times in ``[0, horizon)`` for ``tenant``."""
        stream = self.rng.stream(f"{self.stream_prefix}:{tenant.id}")
        times: List[float] = []
        t = float(stream.exponential(1.0 / tenant.rate))
        while t < horizon:
            times.append(t)
            t += float(stream.exponential(1.0 / tenant.rate))
        return times


class TraceArrivals:
    """Replay of an explicit arrival schedule.

    ``entries`` are ``(time, tenant_id)`` pairs with times relative to
    serving start; unknown tenant ids in the trace are ignored by
    :meth:`times_for` (the dispatcher only asks for its own fleet).
    """

    def __init__(self, entries: Sequence[Tuple[float, str]]):
        cleaned: List[Tuple[float, str]] = []
        for t, tenant_id in entries:
            if t < 0:
                raise DerInval(f"trace arrival at negative time {t}")
            cleaned.append((float(t), str(tenant_id)))
        self.entries = sorted(cleaned)
        self._by_tenant: Dict[str, List[float]] = {}
        for t, tenant_id in self.entries:
            self._by_tenant.setdefault(tenant_id, []).append(t)

    @classmethod
    def from_file(cls, path: str) -> "TraceArrivals":
        """Load a JSON trace: either ``[[t, "tenant"], ...]`` pairs or
        ``[{"t": ..., "tenant": ...}, ...]`` objects."""
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, list):
            raise DerInval(f"trace {path}: expected a JSON array")
        entries: List[Tuple[float, str]] = []
        for item in doc:
            if isinstance(item, dict):
                try:
                    entries.append((float(item["t"]), str(item["tenant"])))
                except KeyError as missing:
                    raise DerInval(
                        f"trace {path}: entry {item!r} missing {missing}"
                    ) from None
            elif isinstance(item, (list, tuple)) and len(item) == 2:
                entries.append((float(item[0]), str(item[1])))
            else:
                raise DerInval(f"trace {path}: malformed entry {item!r}")
        return cls(entries)

    def times_for(self, tenant: TenantSpec, horizon: float) -> List[float]:
        return [t for t in self._by_tenant.get(tenant.id, ()) if t < horizon]
