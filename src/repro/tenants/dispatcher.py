"""The serving loop: arrivals → admission → dispatch → accounting.

The :class:`Dispatcher` owns a tenant fleet for one serving run. During
:meth:`setup` it lays out the storage side (extra pools if asked,
``n_containers`` containers dealt round-robin over pools and client
nodes, per-tenant KV indexes, per-tenant QoS token buckets); during
:meth:`serve` it spawns one open-loop arrival task per tenant and, for
every arrival, consults the :class:`~repro.tenants.admission.\
AdmissionController` and either spawns the job or counts a typed
rejection. Open-loop discipline is strict: a rejected or slow job never
delays the next arrival.

Accounting is two-layered, deliberately:

* **Exact samples** (per-tenant latency lists, byte/job counts) are
  kept in plain dicts on the dispatcher — the report computes exact
  p99/p999 and the Jain fairness index from these, with or without a
  metrics registry installed.
* **Labeled metrics** (``tenant.arrivals{tenant=...}`` and friends plus
  fleet-wide aggregates) are emitted when the cluster has observability
  installed, which is what the PR-7 timeline scraper and SLO rules
  consume (e.g. ``tenant.request.latency{tenant=t01} p99 < 0.5 over 3
  windows``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.daos import api as daos
from repro.errors import DaosError, DerInval
from repro.qos import TokenBucket
from repro.tenants.admission import AdmissionController, TenantRejected
from repro.tenants.spec import KvBurstWork, TenantSpec
from repro.tenants.workloads import TenantIoContext, execute
from repro.units import MiB

# Metric families (aggregate name; per-tenant series add {tenant=<id>}).
M_ARRIVALS = "tenant.arrivals"
M_ADMITTED = "tenant.admitted"
M_REJECTED = "tenant.rejections"
M_COMPLETED = "tenant.completions"
M_FAILED = "tenant.failures"
M_BYTES = "tenant.bytes"
M_LATENCY = "tenant.request.latency"
M_INFLIGHT = "tenant.inflight"  # fleet-wide gauge (admitted, not finished)


@dataclass
class ServingConfig:
    """Knobs for one serving run (defaults favour small, fast tests)."""

    #: serving horizon: arrivals occur in ``[0, duration)``; the run
    #: then drains (jobs admitted before the horizon still finish).
    duration: float = 30.0
    #: master switch for per-tenant byte-rate budgets
    qos_enabled: bool = False
    #: byte-rate budget for tenants that do not set ``qos_bw``
    default_qos_bw: float = 8 * MiB
    #: token burst for tenants that do not set ``qos_burst``
    #: (None -> one second's worth of the tenant's rate budget)
    default_qos_burst: Optional[float] = None
    #: event-queue depth for each job's pipelined operations
    aio_depth: int = 4
    #: admission bounds
    max_inflight: int = 64
    max_inflight_per_tenant: int = 4
    #: storage layout
    n_pools: int = 1
    n_containers: int = 4
    oclass: str = "S1"

    def __post_init__(self):
        if self.duration <= 0:
            raise DerInval("serving duration must be positive")
        if self.n_pools < 1 or self.n_containers < 1:
            raise DerInval("need at least one pool and one container")


class Dispatcher:
    """Routes one tenant fleet's open-loop traffic onto a cluster."""

    def __init__(self, cluster, tenants: Sequence[TenantSpec], arrivals,
                 config: Optional[ServingConfig] = None):
        ids = [t.id for t in tenants]
        if len(set(ids)) != len(ids):
            raise DerInval("duplicate tenant ids in fleet")
        self.cluster = cluster
        self.sim = cluster.sim
        self.tenants = list(tenants)
        self.arrivals = arrivals
        self.config = config or ServingConfig()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_inflight_per_tenant=self.config.max_inflight_per_tenant,
        )
        # exact accounting (always on; the report reads these)
        self.latencies: Dict[str, List[float]] = {t.id: [] for t in tenants}
        self.counts: Dict[str, Dict[str, int]] = {
            t.id: {"arrivals": 0, "admitted": 0, "rejected": 0,
                   "completed": 0, "failed": 0}
            for t in tenants
        }
        self.bytes_by_tenant: Dict[str, float] = {t.id: 0.0 for t in tenants}
        # serving-side state built by setup()
        self._ctx: Dict[str, TenantIoContext] = {}
        self._label: Dict[str, str] = {
            t.id: f"{{tenant={t.id}}}" for t in tenants
        }
        self._jobs: List = []
        self._setup_done = False

    # ------------------------------------------------------------- metrics
    def _incr(self, family: str, tenant_id: str, amount: float = 1.0) -> None:
        metrics = self.sim.metrics
        if metrics is None:
            return
        metrics.counter(family).incr(amount)
        metrics.counter(family + self._label[tenant_id]).incr(amount)

    def _observe(self, family: str, tenant_id: str, value: float) -> None:
        metrics = self.sim.metrics
        if metrics is None:
            return
        metrics.histogram(family).observe(value)
        metrics.histogram(family + self._label[tenant_id]).observe(value)

    def _gauge_add(self, family: str, delta: float) -> None:
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.gauge(family).add(self.sim.now, delta)

    # ------------------------------------------------------------- setup
    def setup(self):
        """Task helper: pools, containers, per-tenant I/O contexts."""
        cfg = self.config
        pool_labels = ["tank"]
        for i in range(1, cfg.n_pools):
            pool = yield from self.cluster.daos.create_pool(f"tenants-p{i}")
            pool_labels.append(pool.label)
        conts = []
        n_client_nodes = len(self.cluster.clients)
        for c in range(cfg.n_containers):
            client = self.cluster.new_client(
                c % n_client_nodes, name=f"tenants.client{c}"
            )
            pool_h = yield from client.connect_pool(
                pool_labels[c % len(pool_labels)]
            )
            cont = yield from pool_h.create_container(
                f"tenants-c{c}", oclass=cfg.oclass
            )
            conts.append(cont)
        for i, spec in enumerate(self.tenants):
            cont = conts[i % len(conts)]
            bucket = None
            if cfg.qos_enabled:
                rate = spec.qos_bw if spec.qos_bw is not None \
                    else cfg.default_qos_bw
                burst = spec.qos_burst
                if burst is None:
                    burst = cfg.default_qos_burst
                if burst is None:
                    burst = rate
                bucket = TokenBucket(self.sim, rate=rate, burst=burst)
            kv = None
            if isinstance(spec.workload, KvBurstWork):
                kv = yield from daos.DaosKV.create(cont)
            self._ctx[spec.id] = TenantIoContext(
                spec, cont, kv=kv, bucket=bucket
            )
        self._setup_done = True
        return len(conts)

    # ------------------------------------------------------------- serving
    def serve(self):
        """Task helper: run the full open-loop horizon, then drain."""
        if not self._setup_done:
            yield from self.setup()
        loops = []
        for spec in self.tenants:
            times = self.arrivals.times_for(spec, self.config.duration)
            loops.append(self.sim.spawn(
                self._arrival_loop(spec, times), f"tenants.arrive:{spec.id}"
            ))
        for loop in loops:
            yield loop
        # all arrivals dispatched; drain in-flight jobs
        for job in self._jobs:
            yield job
        return self.result()

    def _arrival_loop(self, spec: TenantSpec, times: List[float]):
        prev = 0.0
        for t in times:
            if t > prev:
                yield t - prev
            prev = t
            self._on_arrival(spec)
        return len(times)

    def _on_arrival(self, spec: TenantSpec) -> None:
        self.counts[spec.id]["arrivals"] += 1
        self._incr(M_ARRIVALS, spec.id)
        try:
            self.admission.admit(spec.id)
        except TenantRejected:
            self.counts[spec.id]["rejected"] += 1
            self._incr(M_REJECTED, spec.id)
            return
        self.counts[spec.id]["admitted"] += 1
        self._incr(M_ADMITTED, spec.id)
        self._gauge_add(M_INFLIGHT, +1)
        ctx = self._ctx[spec.id]
        self._jobs.append(self.sim.spawn(
            self._job(ctx), f"tenants.job:{spec.id}.{ctx.job_seq + 1}"
        ))

    def _job(self, ctx: TenantIoContext):
        spec = ctx.spec
        arrived = self.sim.now
        try:
            nbytes = yield from execute(ctx, self.sim, self.config.aio_depth)
        except DaosError:
            # engine fault, timeout, busy backend: the job is lost but
            # the serving loop keeps going — chaos runs count these.
            self.counts[spec.id]["failed"] += 1
            self._incr(M_FAILED, spec.id)
            return None
        finally:
            self.admission.release(spec.id)
            self._gauge_add(M_INFLIGHT, -1)
        latency = self.sim.now - arrived
        self.latencies[spec.id].append(latency)
        self.counts[spec.id]["completed"] += 1
        self.bytes_by_tenant[spec.id] += nbytes
        self._incr(M_COMPLETED, spec.id)
        self._incr(M_BYTES, spec.id, nbytes)
        self._observe(M_LATENCY, spec.id, latency)
        return latency

    # ------------------------------------------------------------- results
    def result(self):
        """Raw per-tenant accounting (see :mod:`repro.tenants.report`
        for the derived percentiles/fairness)."""
        return {
            "tenants": {
                t.id: {
                    **self.counts[t.id],
                    "bytes": self.bytes_by_tenant[t.id],
                    "latencies": list(self.latencies[t.id]),
                    "kind": t.workload.kind,
                    "qos_waited": (
                        self._ctx[t.id].qos_waited if t.id in self._ctx
                        else 0.0
                    ),
                }
                for t in self.tenants
            },
            "admission": {
                "admitted": self.admission.admitted,
                "rejected": dict(self.admission.rejected),
            },
            "config": {
                "duration": self.config.duration,
                "qos_enabled": self.config.qos_enabled,
                "n_tenants": len(self.tenants),
            },
            "end_time": self.sim.now,
        }
