"""Admission control: bounded in-flight jobs, typed rejection.

The serving layer sheds load the way a real DAOS service does — with a
``DER_BUSY``-class error at submission time — rather than queueing
without bound (an open-loop arrival process plus an unbounded queue is
just a slow-motion OOM). Two limits apply per submission:

* a **global** in-flight job bound (protects the engines), and
* a **per-tenant** in-flight bound (no single tenant may occupy the
  whole admission window — the first, cheapest fairness mechanism,
  ahead of the token-bucket byte budgets).

:class:`TenantRejected` subclasses :class:`~repro.errors.DerBusy`, so
facade-level ``except daos.DerBusy`` handlers see tenant rejections as
ordinary busy errors while tests can assert the precise type and
reason.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import DerBusy, DerInval

#: rejection reasons
REASON_GLOBAL = "global-limit"
REASON_TENANT = "tenant-limit"


class TenantRejected(DerBusy):
    """A job was refused admission (``DER_BUSY``-style, typed)."""

    def __init__(self, tenant_id: str, reason: str, limit: int):
        self.tenant_id = tenant_id
        self.reason = reason
        self.limit = limit
        super().__init__(
            f"tenant {tenant_id}: admission rejected ({reason}, limit {limit})"
        )


class AdmissionController:
    """Counting admission window over in-flight jobs."""

    def __init__(self, max_inflight: int = 64,
                 max_inflight_per_tenant: int = 4):
        if max_inflight < 1 or max_inflight_per_tenant < 1:
            raise DerInval("admission limits must be >= 1")
        self.max_inflight = max_inflight
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.inflight = 0
        self.inflight_by_tenant: Dict[str, int] = {}
        # cumulative accounting (the dispatcher mirrors these to metrics)
        self.admitted = 0
        self.rejected: Dict[str, int] = {REASON_GLOBAL: 0, REASON_TENANT: 0}

    def admit(self, tenant_id: str) -> None:
        """Claim one in-flight slot or raise :class:`TenantRejected`.

        The per-tenant bound is checked first: when both limits bind,
        the rejection names the tenant's own occupancy, not the shared
        window — the actionable signal for a client backing off.
        """
        mine = self.inflight_by_tenant.get(tenant_id, 0)
        if mine >= self.max_inflight_per_tenant:
            self.rejected[REASON_TENANT] += 1
            raise TenantRejected(
                tenant_id, REASON_TENANT, self.max_inflight_per_tenant
            )
        if self.inflight >= self.max_inflight:
            self.rejected[REASON_GLOBAL] += 1
            raise TenantRejected(tenant_id, REASON_GLOBAL, self.max_inflight)
        self.inflight += 1
        self.inflight_by_tenant[tenant_id] = mine + 1
        self.admitted += 1

    def release(self, tenant_id: str) -> None:
        """Return one in-flight slot (job completed or failed)."""
        mine = self.inflight_by_tenant.get(tenant_id, 0)
        if mine <= 0 or self.inflight <= 0:
            raise DerInval(
                f"release without admit for tenant {tenant_id}"
            )
        self.inflight -= 1
        if mine == 1:
            del self.inflight_by_tenant[tenant_id]
        else:
            self.inflight_by_tenant[tenant_id] = mine - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AdmissionController {self.inflight}/{self.max_inflight} "
            f"tenants={len(self.inflight_by_tenant)}>"
        )
