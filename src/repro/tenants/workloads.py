"""Workload execution: one tenant job on the libdaos facade.

Every job runs as one simulator task built from
:mod:`repro.daos.api` task helpers, with its data-plane calls pipelined
through a private :class:`~repro.daos.api.EventQueue` (the PR-5 async
path, ``aio_depth`` operations in flight). When the tenant carries a
QoS :class:`~repro.qos.TokenBucket`, every operation acquires its byte
charge *before* being submitted — token waits are real serving latency
and are charged to the job, exactly like a rate-limited client
observing its own backpressure.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.daos import api as daos
from repro.tenants.spec import (
    META_OP_BYTES,
    BulkWork,
    KvBurstWork,
    MetaStormWork,
    Work,
)
from repro.units import stable_seed

#: fixed fill byte for KV values (content is irrelevant to timing)
_KV_FILL = b"\x5a"


def tenant_seed(tenant_id: str) -> int:
    """Stable small seed for a tenant's payload patterns (not Python's
    salted ``hash()`` — runs must not depend on PYTHONHASHSEED)."""
    return stable_seed(tenant_id)


class TenantIoContext:
    """Per-tenant serving-side I/O state the dispatcher hands to jobs."""

    __slots__ = ("spec", "cont", "kv", "bucket", "seed", "job_seq",
                 "key_seq", "qos_waited")

    def __init__(self, spec, cont, kv=None, bucket=None):
        self.spec = spec
        self.cont = cont
        self.kv = kv  # shared per-tenant KV index (created at setup)
        self.bucket = bucket  # TokenBucket or None (QoS off)
        self.seed = tenant_seed(spec.id)
        self.job_seq = 0
        self.key_seq = 0
        self.qos_waited = 0.0  # cumulative seconds stalled on tokens


def execute(ctx: TenantIoContext, sim, aio_depth: int) -> Generator:
    """Task helper: run one job of ``ctx``'s workload; returns bytes
    charged to the tenant (the workload's ``qos_bytes``)."""
    work: Work = ctx.spec.workload
    ctx.job_seq += 1
    eq = daos.EventQueue(
        sim, depth=aio_depth,
        name=f"{ctx.spec.id}.j{ctx.job_seq}", metered=False,
    )
    try:
        if isinstance(work, BulkWork):
            nbytes = yield from _bulk(ctx, eq, work)
        elif isinstance(work, KvBurstWork):
            nbytes = yield from _kv_burst(ctx, eq, work)
        elif isinstance(work, MetaStormWork):
            nbytes = yield from _meta_storm(ctx, eq, work)
        else:
            raise daos.DerInval(f"unknown workload {work!r}")
    finally:
        yield from eq.close()
    return nbytes


def _charge(ctx: TenantIoContext, nbytes: float) -> Generator:
    if ctx.bucket is not None:
        ctx.qos_waited += yield from ctx.bucket.acquire(nbytes)
    return None


def _reap(events: List) -> None:
    """Surface any held operation error (post-drain)."""
    for event in events:
        event.result


def _bulk(ctx: TenantIoContext, eq, work: BulkWork) -> Generator:
    """IOR-style streaming transfer on a fresh array object."""
    array = yield from daos.DaosArray.create(
        ctx.cont, cell_size=1, chunk_cells=work.xfer
    )
    try:
        offset = 0
        while offset < work.nbytes:
            chunk = min(work.xfer, work.nbytes - offset)
            yield from _charge(ctx, chunk)
            yield from array.write_nb(
                eq, offset, daos.PatternPayload(ctx.seed, offset, chunk)
            )
            offset += chunk
        _reap((yield from eq.drain()))
        if work.read_back:
            offset = 0
            while offset < work.nbytes:
                chunk = min(work.xfer, work.nbytes - offset)
                yield from _charge(ctx, chunk)
                yield from array.read_nb(eq, offset, chunk)
                offset += chunk
            _reap((yield from eq.drain()))
    finally:
        array.close()
    return work.qos_bytes


def _kv_burst(ctx: TenantIoContext, eq, work: KvBurstWork) -> Generator:
    """Small-object burst: put ``n_ops`` keys, then read them back."""
    value = _KV_FILL * work.value_bytes
    keys = []
    for _ in range(work.n_ops):
        keys.append(f"{ctx.spec.id}/k{ctx.key_seq % work.keyspace:04d}")
        ctx.key_seq += 1
    for key in keys:
        yield from _charge(ctx, work.value_bytes)
        yield from ctx.kv.put_nb(eq, key, value)
    _reap((yield from eq.drain()))
    for key in keys:
        yield from ctx.kv.get_nb(eq, key)
    _reap((yield from eq.drain()))
    return work.qos_bytes


def _meta_storm(ctx: TenantIoContext, eq, work: MetaStormWork) -> Generator:
    """Object-create storm: OID alloc + first record, ``n_ops`` times."""

    def create_one(tag: int) -> Generator:
        oid = yield from ctx.cont.alloc_oid()
        obj = ctx.cont.open_object(oid)
        try:
            yield from obj.put(b"md", b"a", {"tenant": ctx.spec.id, "n": tag})
        finally:
            obj.close()
        return oid

    for i in range(work.n_ops):
        yield from _charge(ctx, META_OP_BYTES)
        yield from eq.submit(create_one(i), name=f"meta.create:{i}")
    _reap((yield from eq.drain()))
    return work.qos_bytes
