"""On-store DFS layout: reserved OIDs and inode entry records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.daos.objid import ObjId
from repro.daos.oclass import S1, oclass_by_name

#: OID.lo values below this are reserved for filesystem metadata; the
#: container's OID allocator is pre-advanced past them at format time.
RESERVED_OIDS = 16
SUPERBLOCK_LO = 0
ROOT_LO = 1

DFS_MAGIC = "DFS1"

#: dkey of the superblock record inside the superblock object
SB_DKEY = b"\x00sb"
SB_AKEY = b"\x00"

#: akey under which a directory entry's inode record lives
ENTRY_AKEY = b"\x00entry"


def superblock_oid() -> ObjId:
    return ObjId.generate(S1, lo=SUPERBLOCK_LO)


def root_oid() -> ObjId:
    return ObjId.generate(S1, lo=ROOT_LO)


@dataclass
class InodeEntry:
    """A directory entry's value: everything needed to open the target.

    Note what is *not* here, matching real DFS: the file size — it is
    derived from the array object's extents, never trusted from metadata.
    """

    kind: str  # "file" | "dir"
    oid_hi: int
    oid_lo: int
    chunk_size: int
    oclass: str
    mode: int = 0o644

    @property
    def oid(self) -> ObjId:
        return ObjId(self.oid_hi, self.oid_lo)

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    def to_record(self) -> dict:
        return {
            "kind": self.kind,
            "oid_hi": self.oid_hi,
            "oid_lo": self.oid_lo,
            "chunk_size": self.chunk_size,
            "oclass": self.oclass,
            "mode": self.mode,
        }

    @classmethod
    def from_record(cls, record: dict) -> "InodeEntry":
        return cls(**record)
