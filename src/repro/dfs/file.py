"""Open DFS regular files."""

from __future__ import annotations

from typing import Generator, Optional

from repro.daos.object import ObjectHandle
from repro.daos.vos.payload import Payload, as_payload
from repro.dfs.layout import InodeEntry
from repro.obs.tracer import NOOP_SPAN


class DfsFile:
    """An open regular file: an array object + its chunk size.

    Size semantics follow DFS: the apparent size is derived from the
    array object's highest extent. The handle keeps a local high-water
    mark so that a writer does not need a size query per operation; a
    fresh query happens on :meth:`get_size` / ``stat``.
    """

    def __init__(self, dfs, entry: InodeEntry, obj: ObjectHandle):
        self.dfs = dfs
        self.entry = entry
        self.obj = obj
        self.chunk_size = entry.chunk_size
        self._local_high = 0
        #: size learned from the store (None until first queried). Reads
        #: clamp against this cached value — one size query per handle,
        #: not one per read, matching dfuse attribute caching. Writers
        #: through other handles extending the file after our first read
        #: are picked up on reopen (POSIX close-to-open consistency).
        self._size_cache = None
        self._closed = False

    # ------------------------------------------------------------- I/O
    def _span(self, name: str, **attrs):
        tracer = self.dfs.client.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "dfs", node=self.dfs.client.node.name, attrs=attrs or None
        )

    def write(self, offset: int, data) -> Generator:
        """Task helper: write at ``offset``; returns bytes written."""
        payload = as_payload(data)
        with self._span("dfs.write", offset=offset, nbytes=payload.nbytes):
            nbytes = yield from self.obj.write(
                offset, payload, chunk_size=self.chunk_size
            )
        self._local_high = max(self._local_high, offset + nbytes)
        if self._size_cache is not None:
            self._size_cache = max(self._size_cache, self._local_high)
        return nbytes

    def read(self, offset: int, length: int) -> Generator:
        """Task helper: read up to ``length`` bytes; short read at EOF."""
        with self._span("dfs.read", offset=offset, nbytes=length):
            if self._size_cache is None:
                yield from self.get_size()
            size = max(self._size_cache, self._local_high)
            if offset >= size:
                return as_payload(b"")
            length = min(length, size - offset)
            payload = yield from self.obj.read(
                offset, length, chunk_size=self.chunk_size
            )
        return payload

    def get_size(self) -> Generator:
        """Task helper: file size from the array object (authoritative)."""
        size = yield from self.obj.size(chunk_size=self.chunk_size)
        self._local_high = max(self._local_high, size)
        self._size_cache = self._local_high
        return self._local_high

    def truncate(self, size: int) -> Generator:
        """Task helper: punch everything past ``size``."""
        current = yield from self.get_size()
        if size < current:
            yield from self.obj.punch_range(
                size, current - size, chunk_size=self.chunk_size
            )
        elif size > current:
            # extend by writing a zero byte at the end, like dfs_punch
            # extending the apparent size with a trailing extent
            yield from self.obj.write(
                size - 1, b"\x00", chunk_size=self.chunk_size
            )
        self._local_high = size
        self._size_cache = size
        return size

    def sync(self) -> Generator:
        """DAOS I/O is synchronous at the VOS level; sync is a no-op RPC
        round (kept for interface parity)."""
        yield 0.0
        return None

    def close(self) -> None:
        if not self._closed:
            self.obj.close()
            self._closed = True
