"""Open DFS regular files."""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.cache.extents import ExtentMap
from repro.cache.readahead import ReadAhead
from repro.cache.writeback import WriteBehind
from repro.daos.object import ObjectHandle
from repro.daos.vos.payload import Payload, as_payload, concat_payloads
from repro.dfs.layout import InodeEntry
from repro.errors import CacheWritebackError
from repro.obs.tracer import NOOP_SPAN


class SharedFileState:
    """Per-file state shared by every open handle on the same mount.

    Fixes cross-handle staleness of the per-handle size cache: a writer
    extending the file raises ``high_water`` here, and every other
    handle's read clamp takes it as an extra lower bound, so handle B
    sees handle A's growth without a fresh size query.  ``epoch`` bumps
    whenever the file shrinks or is replaced (truncate, unlink) so the
    caching tier can invalidate stale data and size state.
    """

    __slots__ = ("high_water", "epoch")

    def __init__(self) -> None:
        self.high_water = 0
        self.epoch = 0


class DfsFile:
    """An open regular file: an array object + its chunk size.

    Size semantics follow DFS: the apparent size is derived from the
    array object's highest extent. The handle keeps a local high-water
    mark so that a writer does not need a size query per operation; a
    fresh query happens on :meth:`get_size` / ``stat``. Handles on the
    same mount additionally share a :class:`SharedFileState`, so size
    growth through one handle is visible to reads through another.

    With the caching tier enabled (``dfs.cache``), the handle grows a
    write-behind buffer (``writeback`` mode) and a read-ahead engine —
    see :mod:`repro.cache`.  In the default ``none`` mode neither object
    exists and the I/O paths below are byte-identical to the uncached
    build.
    """

    def __init__(self, dfs, entry: InodeEntry, obj: ObjectHandle,
                 path: str = "?"):
        self.dfs = dfs
        self.entry = entry
        self.obj = obj
        self.path = path
        self.chunk_size = entry.chunk_size
        self._local_high = 0
        #: size learned from the store (None until first queried). Reads
        #: clamp against this cached value — one size query per handle,
        #: not one per read, matching dfuse attribute caching.
        self._size_cache = None
        self._closed = False
        self.shared: SharedFileState = dfs.file_state(entry)
        self._epoch_seen = self.shared.epoch
        cfg = dfs.cache
        self.wb: Optional[WriteBehind] = (
            WriteBehind(cfg, dfs.client.sim, path)
            if cfg is not None and cfg.writeback else None
        )
        self.ra: Optional[ReadAhead] = (
            ReadAhead(cfg) if cfg is not None else None
        )
        self._ra_buf: Optional[ExtentMap] = (
            ExtentMap() if cfg is not None else None
        )
        # Canonical labeled read-ahead metric names, built once per
        # handle — the hit counter sits inside the read segment loop.
        node = f"{{node={dfs.client.node.name}}}"
        self._ra_hit_metric = f"cache.ra.hit_bytes{node}"
        self._ra_prefetch_metric = f"cache.ra.prefetches{node}"
        self._ra_prefetched_metric = f"cache.ra.prefetched_bytes{node}"

    # ------------------------------------------------------------- I/O
    def _span(self, name: str, **attrs):
        tracer = self.dfs.client.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "dfs", node=self.dfs.client.node.name, attrs=attrs or None
        )

    def _cache_span(self, name: str, **attrs):
        tracer = self.dfs.client.sim.tracer
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(
            name, "cache", node=self.dfs.client.node.name, attrs=attrs or None
        )

    def _check_epoch(self) -> None:
        """React to a truncate/replace through another handle."""
        if self.shared.epoch != self._epoch_seen:
            self._epoch_seen = self.shared.epoch
            self._size_cache = None
            self._local_high = 0
            if self._ra_buf is not None:
                self._ra_buf.clear()

    def write(self, offset: int, data) -> Generator:
        """Task helper: write at ``offset``; returns bytes written."""
        payload = as_payload(data)
        if self.wb is not None:
            return (yield from self._write_buffered(offset, payload))
        with self._span("dfs.write", offset=offset, nbytes=payload.nbytes):
            nbytes = yield from self.obj.write(
                offset, payload, chunk_size=self.chunk_size
            )
        self._local_high = max(self._local_high, offset + nbytes)
        if self._size_cache is not None:
            self._size_cache = max(self._size_cache, self._local_high)
        self.shared.high_water = max(self.shared.high_water, self._local_high)
        return nbytes

    def _write_buffered(self, offset: int, payload: Payload) -> Generator:
        """Writeback mode: absorb into the dirty buffer; flush on watermark."""
        self._check_epoch()
        with self._cache_span(
            "cache.wb.write", offset=offset, nbytes=payload.nbytes
        ):
            yield self.dfs.cache.copy_cost(payload.nbytes)
            self.wb.buffer(offset, payload)
        self._local_high = max(self._local_high, offset + payload.nbytes)
        if self._size_cache is not None:
            self._size_cache = max(self._size_cache, self._local_high)
        if self.wb.need_flush:
            # watermark flush; a failure latches inside the buffer and
            # surfaces on the next fsync/close, never here
            yield from self.flush()
        return payload.nbytes

    def write_nb(self, eq, offset: int, data) -> Generator:
        """Task helper: launch a non-blocking write through ``eq`` (the
        DFS analogue of passing a daos_event_t); returns its Event. The
        bounded in-flight window of the queue provides the pipelining
        depth; reap with ``eq.poll()``/``eq.test()``."""
        return (
            yield from eq.submit(
                self.write(offset, data), name=f"dfs.write@{offset}"
            )
        )

    def read_nb(self, eq, offset: int, length: int) -> Generator:
        """Task helper: launch a non-blocking read through ``eq``;
        returns its Event (result is the payload once reaped)."""
        return (
            yield from eq.submit(
                self.read(offset, length), name=f"dfs.read@{offset}"
            )
        )

    def _commit(self, offset: int, payload: Payload) -> Generator:
        """Issue one coalesced store write on behalf of the flusher."""
        with self._span(
            "dfs.write", offset=offset, nbytes=payload.nbytes, coalesced=True
        ):
            nbytes = yield from self.obj.write(
                offset, payload, chunk_size=self.chunk_size
            )
        self.shared.high_water = max(self.shared.high_water, offset + nbytes)
        return nbytes

    def read(self, offset: int, length: int) -> Generator:
        """Task helper: read up to ``length`` bytes; short read at EOF."""
        if self.ra is None and self.wb is None:
            with self._span("dfs.read", offset=offset, nbytes=length):
                if self._size_cache is None:
                    yield from self.get_size()
                size = max(self._size_cache, self._local_high,
                           self.shared.high_water)
                if offset >= size:
                    return as_payload(b"")
                length = min(length, size - offset)
                payload = yield from self.obj.read(
                    offset, length, chunk_size=self.chunk_size
                )
            return payload
        return (yield from self._read_cached(offset, length))

    def _read_cached(self, offset: int, length: int) -> Generator:
        """Cached read: write-behind overlay + read-ahead buffer + store."""
        self._check_epoch()
        with self._span("dfs.read", offset=offset, nbytes=length):
            if self._size_cache is None:
                yield from self.get_size()
            size = max(self._size_cache, self._local_high,
                       self.shared.high_water)
            if self.wb is not None:
                size = max(size, self.wb.high_water())
            if length <= 0 or offset >= size:
                return as_payload(b"")
            length = min(length, size - offset)
            self.ra.observe(offset, length)
            metrics = self.dfs.client.sim.metrics
            parts: List[Payload] = []
            copy_bytes = 0
            segments = (
                self.wb.overlay(offset, length) if self.wb is not None
                else [(offset, length, None)]
            )
            for seg_start, seg_len, dirty in segments:
                if dirty is not None:
                    rel = seg_start - dirty.start
                    parts.append(dirty.payload.slice(rel, rel + seg_len))
                    copy_bytes += seg_len
                    continue
                for sub_start, sub_len, ra_ext in self._ra_buf.lookup(
                    seg_start, seg_len
                ):
                    if ra_ext is not None:
                        rel = sub_start - ra_ext.start
                        parts.append(ra_ext.payload.slice(rel, rel + sub_len))
                        copy_bytes += sub_len
                        if metrics is not None:
                            metrics.incr(self._ra_hit_metric, sub_len)
                    else:
                        fetched = yield from self._fetch(
                            sub_start, sub_len, offset + length, size
                        )
                        parts.append(fetched.slice(0, sub_len))
            if copy_bytes:
                with self._cache_span("cache.read.copy", nbytes=copy_bytes):
                    yield self.dfs.cache.copy_cost(copy_bytes)
            result = concat_payloads(parts)
        return result

    def _fetch(self, start: int, need: int, req_stop: int,
               size: int) -> Generator:
        """Read a hole from the store, widened by the read-ahead window
        when this is the final hole of a sequential stream."""
        extra = 0
        stop = start + need
        if stop >= req_stop:
            extra = min(self.ra.window(), max(0, size - stop))
        payload = yield from self.obj.read(
            start, need + extra, chunk_size=self.chunk_size
        )
        if extra > 0 and payload.nbytes > need:
            got = payload.nbytes - need
            # one window in flight: the buffer is exactly the last prefetch
            self._ra_buf.clear()
            self._ra_buf.insert(stop, payload.slice(need, payload.nbytes))
            self.ra.note_prefetch(got)
            metrics = self.dfs.client.sim.metrics
            if metrics is not None:
                metrics.incr(self._ra_prefetch_metric)
                metrics.incr(self._ra_prefetched_metric, got)
        return payload

    def get_size(self) -> Generator:
        """Task helper: file size from the array object (authoritative)."""
        size = yield from self.obj.size(chunk_size=self.chunk_size)
        self._local_high = max(self._local_high, size)
        self._size_cache = self._local_high
        self.shared.high_water = max(self.shared.high_water, self._local_high)
        return self._local_high

    def truncate(self, size: int) -> Generator:
        """Task helper: punch everything past ``size``."""
        if self.wb is not None and self.wb.dirty_bytes:
            yield from self.flush()
            self.wb.raise_pending()
        current = yield from self.get_size()
        if size < current:
            yield from self.obj.punch_range(
                size, current - size, chunk_size=self.chunk_size
            )
        elif size > current:
            # extend by writing a zero byte at the end, like dfs_punch
            # extending the apparent size with a trailing extent
            yield from self.obj.write(
                size - 1, b"\x00", chunk_size=self.chunk_size
            )
        self._local_high = size
        self._size_cache = size
        self.shared.high_water = size
        self.shared.epoch += 1
        self._epoch_seen = self.shared.epoch
        if self._ra_buf is not None:
            self._ra_buf.clear()
        return size

    def flush(self) -> Generator:
        """Task helper: drain write-behind dirty data as coalesced writes.

        A storage failure latches inside the buffer (data is kept); call
        :meth:`sync` or :meth:`close` to surface it as a typed error.
        """
        if self.wb is not None and self.wb.dirty_bytes:
            with self._cache_span(
                "cache.wb.flush", dirty_bytes=self.wb.dirty_bytes
            ):
                yield from self.wb.flush(self._commit)
        return None

    def sync(self) -> Generator:
        """fsync: flush write-behind data, then the usual no-op RPC round.

        Raises :class:`~repro.errors.CacheWritebackError` if buffered
        data could not be committed (e.g. the engine crashed); the data
        stays buffered, so a later sync after recovery retries.
        """
        if self.wb is not None:
            yield from self.flush()
            self.wb.raise_pending()
        yield 0.0
        return None

    def close(self) -> None:
        """Release the handle. Refuses to drop dirty write-behind data:
        callers flush first (see :meth:`flush`); if dirty bytes remain —
        typically because the flush failed — the typed error surfaces
        here and the handle stays open so a retry can still succeed."""
        if self._closed:
            return
        if self.wb is not None and self.wb.dirty_bytes:
            cause = self.wb.error or RuntimeError(
                "unflushed write-behind data at close"
            )
            raise CacheWritebackError(self.path, self.wb.pending(), cause)
        self.obj.close()
        self._closed = True

    def __enter__(self) -> "DfsFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
