"""DFS — the DAOS File System (``libdfs``).

A POSIX-like namespace encoded in DAOS objects, faithful to the real
layout: a reserved superblock KV object, directories as KV objects whose
dkeys are entry names and whose values are inode records (type, OID,
chunk size), and regular files as byte-array objects chunked every
``chunk_size`` bytes. Applications link against DFS directly (the
paper's "DAOS" / DFS interface) or mount it through
:mod:`repro.dfuse` for unmodified POSIX I/O.
"""

from repro.dfs.dfs import Dfs
from repro.dfs.file import DfsFile
from repro.dfs.layout import InodeEntry

__all__ = ["Dfs", "DfsFile", "InodeEntry"]
