"""The DFS namespace implementation.

``Dfs.mount`` formats the container on first use (superblock + root
directory, both at reserved OIDs) and returns a mounted filesystem
object whose operations are task helpers. Directory entries are dkeys of
the directory's KV object; lookups walk the path one component at a
time, exactly like ``dfs_lookup`` (each hop is one engine RPC to the
entry's home target).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.cache.attrs import TtlCache
from repro.cache.config import CacheConfig
from repro.daos.client import ContainerHandle
from repro.daos.object import ObjectHandle
from repro.daos.oclass import S1, oclass_by_name
from repro.dfs.file import DfsFile, SharedFileState
from repro.dfs.layout import (
    DFS_MAGIC,
    ENTRY_AKEY,
    RESERVED_OIDS,
    SB_AKEY,
    SB_DKEY,
    InodeEntry,
    root_oid,
    superblock_oid,
)
from repro.errors import (
    DerExist,
    DerIsDir,
    DerNonexist,
    DerNotDir,
)
from repro.posix.vfs import normalize
from repro.units import MiB


class Dfs:
    """A mounted DAOS File System."""

    def __init__(self, cont: ContainerHandle,
                 cache: Optional[CacheConfig] = None):
        self.cont = cont
        self.client = cont.client
        self._sb_obj: Optional[ObjectHandle] = None
        self._root: Optional[ObjectHandle] = None
        self.default_chunk = cont.chunk_size
        self.default_oclass = cont.props.get("oclass", "SX")
        #: caching tier config; None (the default ``none`` mode) keeps
        #: every path below byte-identical to the uncached build
        self.cache: Optional[CacheConfig] = (
            cache if cache is not None and cache.enabled else None
        )
        #: (oid_hi, oid_lo) -> SharedFileState; always on — it is the
        #: cross-handle size-staleness fix, not a cache feature
        self._file_states: dict = {}
        self._dentry: Optional[TtlCache] = (
            TtlCache(self.client.sim, self.cache.dentry_ttl, "cache.dentry",
                     labels={"node": self.client.node.name})
            if self.cache is not None else None
        )

    def file_state(self, entry: InodeEntry) -> SharedFileState:
        """Shared per-file state for every handle on this mount."""
        key = (entry.oid_hi, entry.oid_lo)
        state = self._file_states.get(key)
        if state is None:
            state = self._file_states[key] = SharedFileState()
        return state

    @staticmethod
    def _canon(parts: List[str]) -> str:
        return "/" + "/".join(parts)

    # ------------------------------------------------------------- mount
    @classmethod
    def mount(cls, cont: ContainerHandle,
              cache: Optional[CacheConfig] = None) -> Generator:
        """Task helper: mount (formatting on first use)."""
        dfs = cls(cont, cache=cache)
        dfs._sb_obj = cont.open_object(superblock_oid())
        dfs._root = cont.open_object(root_oid())
        try:
            record = yield from dfs._sb_obj.get(SB_DKEY, SB_AKEY)
            if record.get("magic") != DFS_MAGIC:
                raise DerNonexist("bad superblock magic")
        except DerNonexist:
            yield from dfs._format()
        return dfs

    def _format(self) -> Generator:
        # Reserve low OIDs so allocation never collides with metadata.
        yield from self.client.rsvc.invoke(
            ("cas", f"oidnext:{self.cont.uuid}", None, RESERVED_OIDS)
        )
        yield from self._sb_obj.put(
            SB_DKEY,
            SB_AKEY,
            {
                "magic": DFS_MAGIC,
                "chunk_size": self.default_chunk,
                "oclass": self.default_oclass,
            },
        )
        # Root directory exists implicitly: its object is created on
        # first entry insertion; nothing else to persist.
        return None

    def umount(self) -> None:
        if self._sb_obj is not None:
            self._sb_obj.close()
        if self._root is not None:
            self._root.close()

    # ------------------------------------------------------------- lookup
    def _lookup_dir(self, parts: List[str]) -> Generator:
        """Walk to the directory at ``parts``; returns its object handle."""
        current = self._root
        walked = []
        for name in parts:
            record = yield from self._entry_get(current, name)
            if record is None:
                raise DerNonexist("/" + "/".join(walked + [name]))
            entry = InodeEntry.from_record(record)
            if not entry.is_dir:
                raise DerNotDir("/" + "/".join(walked + [name]))
            if current is not self._root:
                current.close()
            current = self.cont.open_object(entry.oid)
            walked.append(name)
        return current

    def _split(self, path: str) -> Tuple[List[str], str]:
        parts = normalize(path)
        if not parts:
            raise DerNonexist("path resolves to the root directory")
        return parts[:-1], parts[-1]

    def _entry_get(self, dir_obj: ObjectHandle, name: str) -> Generator:
        try:
            record = yield from dir_obj.get(name.encode("utf-8"), ENTRY_AKEY)
        except DerNonexist:
            return None
        return record

    def _release_dir(self, dir_obj: ObjectHandle) -> None:
        if dir_obj is not self._root:
            dir_obj.close()

    def lookup(self, path: str) -> Generator:
        """Task helper: path → :class:`InodeEntry` (raises if missing).

        With the caching tier enabled, a fresh dentry-cache entry skips
        the per-component walk entirely (dfuse ``--dentry-time``)."""
        parts = normalize(path)
        if not parts:
            return InodeEntry(
                "dir", root_oid().hi, root_oid().lo, self.default_chunk, "S1"
            )
        key = self._canon(parts)
        if self._dentry is not None:
            cached = self._dentry.get(key)
            if cached is not None:
                return cached
        dir_obj = yield from self._lookup_dir(parts[:-1])
        try:
            record = yield from self._entry_get(dir_obj, parts[-1])
        finally:
            self._release_dir(dir_obj)
        if record is None:
            raise DerNonexist(path)
        entry = InodeEntry.from_record(record)
        if self._dentry is not None:
            self._dentry.put(key, entry)
        return entry

    # ------------------------------------------------------------- files
    def open_file(
        self,
        path: str,
        create: bool = False,
        excl: bool = False,
        trunc: bool = False,
        chunk_size: Optional[int] = None,
        oclass: Optional[str] = None,
    ) -> Generator:
        """Task helper: open (optionally create/truncate) a regular file."""
        parents, name = self._split(path)
        key = self._canon(parents + [name])
        if self._dentry is not None and not create:
            cached = self._dentry.get(key)
            if cached is not None and not cached.is_dir:
                handle = DfsFile(
                    self, cached, self.cont.open_object(cached.oid), path=key
                )
                if trunc:
                    yield from handle.truncate(0)
                return handle
        dir_obj = yield from self._lookup_dir(parents)
        try:
            record = yield from self._entry_get(dir_obj, name)
            if record is None:
                if not create:
                    raise DerNonexist(path)
                oclass_name = oclass or self.default_oclass
                oid = yield from self.cont.alloc_oid(
                    oclass_by_name(oclass_name)
                )
                entry = InodeEntry(
                    kind="file",
                    oid_hi=oid.hi,
                    oid_lo=oid.lo,
                    chunk_size=chunk_size or self.default_chunk,
                    oclass=oclass_name,
                )
                yield from dir_obj.put(
                    name.encode("utf-8"), ENTRY_AKEY, entry.to_record()
                )
            else:
                entry = InodeEntry.from_record(record)
                if entry.is_dir:
                    raise DerIsDir(path)
                if excl and create:
                    raise DerExist(path)
        finally:
            self._release_dir(dir_obj)
        if self._dentry is not None:
            self._dentry.put(key, entry)
        handle = DfsFile(self, entry, self.cont.open_object(entry.oid),
                         path=key)
        if trunc and record is not None:
            yield from handle.truncate(0)
        return handle

    # ------------------------------------------------------------- directories
    def mkdir(self, path: str, oclass: str = "S1") -> Generator:
        """Task helper: create a directory (parents must exist)."""
        parents, name = self._split(path)
        dir_obj = yield from self._lookup_dir(parents)
        try:
            record = yield from self._entry_get(dir_obj, name)
            if record is not None:
                raise DerExist(path)
            oid = yield from self.cont.alloc_oid(oclass_by_name(oclass))
            entry = InodeEntry(
                kind="dir",
                oid_hi=oid.hi,
                oid_lo=oid.lo,
                chunk_size=self.default_chunk,
                oclass=oclass,
                mode=0o755,
            )
            yield from dir_obj.put(
                name.encode("utf-8"), ENTRY_AKEY, entry.to_record()
            )
        finally:
            self._release_dir(dir_obj)
        if self._dentry is not None:
            self._dentry.put(self._canon(parents + [name]), entry)
        return entry

    def readdir(self, path: str) -> Generator:
        """Task helper: sorted entry names of a directory."""
        parts = normalize(path)
        dir_obj = yield from self._lookup_dir(parts)
        try:
            names = yield from dir_obj.list_dkeys(limit=1 << 20)
        finally:
            self._release_dir(dir_obj)
        return [n.decode("utf-8") for n in names]

    def stat(self, path: str) -> Generator:
        """Task helper: (entry, size) — size queried from the array."""
        entry = yield from self.lookup(path)
        if entry.is_dir:
            return entry, 0
        obj = self.cont.open_object(entry.oid)
        try:
            size = yield from obj.size(chunk_size=entry.chunk_size)
        finally:
            obj.close()
        return entry, size

    def unlink(self, path: str) -> Generator:
        """Task helper: remove a file (punching its object's data)."""
        parents, name = self._split(path)
        dir_obj = yield from self._lookup_dir(parents)
        try:
            record = yield from self._entry_get(dir_obj, name)
            if record is None:
                raise DerNonexist(path)
            entry = InodeEntry.from_record(record)
            if entry.is_dir:
                raise DerIsDir(path)
            yield from dir_obj.punch_dkey(name.encode("utf-8"))
        finally:
            self._release_dir(dir_obj)
        if self._dentry is not None:
            self._dentry.invalidate(self._canon(parents + [name]))
        # a new file at this path gets fresh shared state; surviving
        # handles see the epoch bump and drop their cached size/data
        state = self._file_states.pop((entry.oid_hi, entry.oid_lo), None)
        if state is not None:
            state.epoch += 1
        obj = self.cont.open_object(entry.oid)
        try:
            yield from obj.punch_object()
        finally:
            obj.close()
        return True

    def rmdir(self, path: str) -> Generator:
        """Task helper: remove an empty directory."""
        parents, name = self._split(path)
        dir_obj = yield from self._lookup_dir(parents)
        try:
            record = yield from self._entry_get(dir_obj, name)
            if record is None:
                raise DerNonexist(path)
            entry = InodeEntry.from_record(record)
            if not entry.is_dir:
                raise DerNotDir(path)
            target = self.cont.open_object(entry.oid)
            try:
                children = yield from target.list_dkeys(limit=1)
            finally:
                target.close()
            if children:
                raise DerExist(f"{path} is not empty")
            yield from dir_obj.punch_dkey(name.encode("utf-8"))
        finally:
            self._release_dir(dir_obj)
        if self._dentry is not None:
            self._dentry.invalidate_prefix(self._canon(parents + [name]))
        return True

    def rename(self, old: str, new: str) -> Generator:
        """Task helper: move an entry (overwrites an existing file)."""
        old_parents, old_name = self._split(old)
        new_parents, new_name = self._split(new)
        src_dir = yield from self._lookup_dir(old_parents)
        try:
            record = yield from self._entry_get(src_dir, old_name)
            if record is None:
                raise DerNonexist(old)
            dst_dir = yield from self._lookup_dir(new_parents)
            try:
                existing = yield from self._entry_get(dst_dir, new_name)
                if existing is not None and InodeEntry.from_record(existing).is_dir:
                    raise DerIsDir(new)
                yield from dst_dir.put(
                    new_name.encode("utf-8"), ENTRY_AKEY, record
                )
            finally:
                self._release_dir(dst_dir)
            yield from src_dir.punch_dkey(old_name.encode("utf-8"))
        finally:
            self._release_dir(src_dir)
        if self._dentry is not None:
            self._dentry.invalidate_prefix(self._canon(old_parents + [old_name]))
            self._dentry.invalidate_prefix(self._canon(new_parents + [new_name]))
        return True
