"""Rebuild impact on foreground I/O — IOR FPP during rebuild vs healthy.

Series: a healthy baseline vs the same IOR run racing a 128 MiB resync,
swept over the rebuild throttle fraction. The subsystem's headline
claim: the throttle bounds what rebuild traffic may take from
foreground I/O — at small fractions the rebuild is invisible, with the
throttle disabled it visibly dents write bandwidth.
"""

from conftest import run_once

from repro.bench import rebuild_fpp_sweep, render_figure

FRACTIONS = (0.05, 0.25, 1.0)


def test_rebuild_throttle_fpp_sweep(benchmark):
    def sweep():
        return rebuild_fpp_sweep(fractions=FRACTIONS)

    read_fig, write_fig = run_once(benchmark, sweep)
    print()
    print(render_figure(read_fig))
    print()
    print(render_figure(write_fig))

    healthy_w = write_fig.series_by_label("healthy")
    rebuild_w = write_fig.series_by_label("during rebuild")
    healthy_r = read_fig.series_by_label("healthy")
    rebuild_r = read_fig.series_by_label("during rebuild")

    # the healthy baseline is one number, independent of the x value
    assert len({healthy_w.at(f) for f in FRACTIONS}) == 1

    # a tight throttle makes the rebuild invisible to foreground writes
    assert rebuild_w.at(0.05) >= healthy_w.at(0.05) * 0.95
    # an unthrottled rebuild visibly competes for the same links
    assert rebuild_w.at(1.0) < healthy_w.at(1.0) * 0.9
    # more throttle never means less foreground bandwidth
    assert rebuild_w.at(0.05) >= rebuild_w.at(1.0)

    # reads ride on the surviving replica and the client NIC; the
    # rebuild must not collapse them at any fraction
    for fraction in FRACTIONS:
        assert rebuild_r.at(fraction) >= healthy_r.at(fraction) * 0.9
