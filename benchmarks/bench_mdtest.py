"""Extension E2: mdtest-style metadata rates, DAOS vs Lustre.

The paper's introduction motivates object stores with metadata-bound
small-file workloads; this measures it: create/stat/remove storms on
DFuse (distributed directory-entry KV across engine targets) vs Lustre
(single MDS).
"""

from conftest import run_once

from repro.cluster import build_lustre_cluster, nextgenio
from repro.mdtest import MdtestParams, run_mdtest


def test_metadata_rates(benchmark, bench_scale):
    nodes = min(4, max(bench_scale["node_counts"]))
    params = MdtestParams(files_per_rank=64)

    def sweep():
        daos = run_mdtest(
            nextgenio(client_nodes=nodes), params, ppn=bench_scale["ppn"]
        )
        lustre = run_mdtest(
            build_lustre_cluster(server_nodes=8, client_nodes=nodes),
            params,
            ppn=bench_scale["ppn"],
        )
        return daos, lustre

    daos, lustre = run_once(benchmark, sweep)
    print()
    print(f"{'phase':>8s} {'DAOS ops/s':>12s} {'Lustre ops/s':>13s}")
    for phase in params.phases:
        print(f"{phase:>8s} {daos.rates[phase]:>12.0f} "
              f"{lustre.rates[phase]:>13.0f}")
    assert all(rate > 0 for rate in daos.rates.values())
    assert all(rate > 0 for rate in lustre.rates.values())


def test_mdtest_scaling_contrast(benchmark, bench_scale):
    """Creates/second as clients grow: DAOS keeps scaling, the single
    MDS saturates."""
    params = MdtestParams(files_per_rank=32, phases=("create",))

    def sweep():
        out = {}
        for nodes in (1, 4):
            out[("daos", nodes)] = run_mdtest(
                nextgenio(client_nodes=nodes), params, ppn=bench_scale["ppn"]
            ).rates["create"]
            out[("lustre", nodes)] = run_mdtest(
                build_lustre_cluster(server_nodes=8, client_nodes=nodes),
                params,
                ppn=bench_scale["ppn"],
            ).rates["create"]
        return out

    data = run_once(benchmark, sweep)
    daos_speedup = data[("daos", 4)] / data[("daos", 1)]
    lustre_speedup = data[("lustre", 4)] / data[("lustre", 1)]
    print()
    print(f"create-rate speedup 1→4 nodes: DAOS {daos_speedup:.2f}x, "
          f"Lustre {lustre_speedup:.2f}x")
    assert daos_speedup > lustre_speedup
