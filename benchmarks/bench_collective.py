"""Ablation A3: collective vs independent MPI-IO on the shared file.

Two findings, matching why the paper's MPI-IO runs hold up on DAOS:

- On **DAOS** (byte-granular, lockless), independent unaligned
  interleaved writes are already fine — collective buffering's exchange
  phase is pure overhead, so independent wins. This is why IOR's
  default independent MPI-IO is the right configuration on DAOS.
- On **Lustre**, the same workload hammers the LDLM: we measure the
  lock traffic (grants + revocations) directly and show collective
  buffering's static-cyclic file domains cut it by an order of
  magnitude — each aggregator re-uses its extent locks call after call.
"""

from conftest import run_once

from repro.cluster import build_lustre_cluster, nextgenio
from repro.ior import IorParams, run_ior
from repro.posix.vfs import normalize
from repro.units import GiB, parse_size


def _lock_ops(cluster, path="/ior/testFile"):
    ino = cluster.fs.mds.resolve(normalize(path)).ino
    grants = revocations = 0
    for ost in cluster.fs.osts:
        for key, space in ost.locks.items():
            if key[0] == ino:
                grants += space.grants
                revocations += space.revocations
    return grants + revocations


def test_collective_vs_independent(benchmark, bench_scale):
    nodes = min(4, max(bench_scale["node_counts"]))
    # Small unaligned transfers: the per-op LDLM cost dominates the bulk
    # time — the io500-hard regime.
    xfer = 50 * 1000
    nblk = parse_size(bench_scale["block_size"]) // 4
    nblk -= nblk % xfer

    def sweep():
        out = {}
        for system in ("daos", "lustre"):
            for collective in (False, True):
                if system == "daos":
                    cluster = nextgenio(client_nodes=nodes)
                else:
                    cluster = build_lustre_cluster(
                        server_nodes=8, client_nodes=nodes, stripe_count=8
                    )
                params = IorParams(
                    api="MPIIO",
                    collective=collective,
                    interleaved=True,
                    oclass="SX" if system == "daos" else None,
                    block_size=nblk,
                    transfer_size=xfer,
                )
                result = run_ior(cluster, params, ppn=bench_scale["ppn"])
                lock_ops = (
                    _lock_ops(cluster) if system == "lustre" else 0
                )
                out[(system, collective)] = (result.max_write_bw, lock_ops)
        return out

    data = run_once(benchmark, sweep)
    print()
    print(f"{'system':>8s} {'mode':>12s} {'write GiB/s':>12s} "
          f"{'LDLM ops':>10s}  (interleaved unaligned shared write)")
    for system in ("daos", "lustre"):
        for collective in (False, True):
            bw, locks = data[(system, collective)]
            mode = "collective" if collective else "independent"
            print(f"{system:>8s} {mode:>12s} {bw / GiB:>12.2f} "
                  f"{locks:>10d}")

    # DAOS is lockless: independent I/O needs no help and collective's
    # exchange phase only costs.
    assert data[("daos", False)][0] > data[("daos", True)][0]
    # Lustre: collective buffering slashes lock-manager traffic.
    ind_locks = data[("lustre", False)][1]
    col_locks = data[("lustre", True)][1]
    assert col_locks * 5 < ind_locks
    # ...and keeps bandwidth in the same class despite the exchange.
    assert data[("lustre", True)][0] > 0.6 * data[("lustre", False)][0]