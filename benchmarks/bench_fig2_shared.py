"""Figure 2 (a: read, b: write) — IOR single shared file ("hard").

Series: DFS, MPI-IO over DFuse, HDF5 (parallel, mpio VFD) on an SX
object, bandwidth vs client nodes. Checks: similar performance across
interfaces, DFS highest write, and the shared ≈ file-per-process
property that closes Section IV.
"""

from conftest import run_once

from repro.bench import fig1_fpp, fig2_shared, render_figure


def test_fig2_shared_file(benchmark, bench_scale):
    def sweep():
        return fig2_shared(
            node_counts=bench_scale["node_counts"],
            block_size=bench_scale["block_size"],
            ppn=bench_scale["ppn"],
        )

    fig2a, fig2b = run_once(benchmark, sweep)
    print()
    print(render_figure(fig2a))
    print()
    print(render_figure(fig2b))

    xs = sorted({p.x for s in fig2a.series for p in s.points})
    for x in xs:
        writes = {s.label: s.at(x) for s in fig2b.series}
        reads = {s.label: s.at(x) for s in fig2a.series}
        # DFS gives the highest write bandwidth...
        assert writes["DAOS"] == max(writes.values())
        # ...and performance is similar across interfaces.
        assert min(writes.values()) > 0.65 * max(writes.values())
        assert min(reads.values()) > 0.65 * max(reads.values())


def test_fig2_shared_matches_fpp_overall(benchmark, bench_scale):
    """'file-per-process and shared-file give similar overall
    performance' — compare the DFS/SX series of both modes."""
    nodes = max(bench_scale["node_counts"])

    def sweep():
        fig1a, fig1b = fig1_fpp(
            node_counts=(nodes,), block_size=bench_scale["block_size"],
            ppn=bench_scale["ppn"], interfaces=("DFS",), oclasses=("SX",),
        )
        fig2a, fig2b = fig2_shared(
            node_counts=(nodes,), block_size=bench_scale["block_size"],
            ppn=bench_scale["ppn"], interfaces=("DFS",),
        )
        return (
            fig1b.series[0].at(nodes),
            fig2b.series[0].at(nodes),
            fig1a.series[0].at(nodes),
            fig2a.series[0].at(nodes),
        )

    fpp_w, shared_w, fpp_r, shared_r = run_once(benchmark, sweep)
    assert shared_w > 0.6 * fpp_w and shared_w < 1.7 * fpp_w
    assert shared_r > 0.6 * fpp_r and shared_r < 1.7 * fpp_r
