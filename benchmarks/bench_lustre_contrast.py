"""Section IV/V contrast: DAOS shared-file ≈ file-per-process, "in stark
contrast to the performance standard parallel filesystems provide".

Runs the easy and (unaligned-interleaved) hard write workloads on both
DAOS and the Lustre baseline over identical simulated hardware.
"""

from conftest import run_once

from repro.bench import lustre_contrast
from repro.units import fmt_bw


def test_stark_contrast(benchmark, bench_scale):
    nodes = min(4, max(bench_scale["node_counts"]))

    def sweep():
        return lustre_contrast(
            nodes=nodes,
            block_size=bench_scale["block_size"],
            ppn=bench_scale["ppn"],
        )

    cells = run_once(benchmark, sweep)
    daos_ratio = cells["daos_shared_write"] / cells["daos_fpp_write"]
    lustre_ratio = cells["lustre_shared_write"] / cells["lustre_fpp_write"]
    print()
    print(f"{'':22s} {'file-per-process':>18s} {'shared-file':>14s} "
          f"{'ratio':>7s}")
    print(f"{'DAOS (DFS, SX)':22s} "
          f"{fmt_bw(cells['daos_fpp_write']):>18s} "
          f"{fmt_bw(cells['daos_shared_write']):>14s} {daos_ratio:>6.2f}")
    print(f"{'Lustre (POSIX)':22s} "
          f"{fmt_bw(cells['lustre_fpp_write']):>18s} "
          f"{fmt_bw(cells['lustre_shared_write']):>14s} {lustre_ratio:>6.2f}")

    assert daos_ratio > 0.6
    assert lustre_ratio < 0.5
    assert daos_ratio > 2 * lustre_ratio
