"""Field-database sweep — object size x backend x sync/async, plus the
Lustre contrast and a 100k-field determinism acceptance run.

Each sweep cell archives and retrieves a small field grid through one
``(mapping, pipeline)`` combination and records the numbers the papers
argue about: archive/retrieve bandwidth, fields/s, exact per-field tail
latencies. The headline shape claim is pinned by the pytest entry: the
native KV and array mappings beat file-per-field DFS at small object
sizes, DFS overtakes KV past the crossover size (recorded in the
artifact), and the async event-queue pipeline beats blocking I/O at
depth >= 4.

The *acceptance* cell is the scale gate: a seeded 100k-field archive on
the KV backend, flushed, then a scattered retrieve of one parameter
(10k fields) with the timeline scraper on. Its report and timeline JSON
are hashed into the artifact, so the ``make bench-fdb`` double-run
``cmp`` pins the whole run bitwise across processes.

``python benchmarks/bench_fdb.py --out artifacts/BENCH_fdb.json`` writes
the artifact; ``REPRO_BENCH_FULL=1`` widens the size grid.
"""

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.fdb import FdbParams, build_report, run_fdb
from repro.units import KiB, MiB

#: quick size grid; REPRO_BENCH_FULL=1 adds the intermediate points
SIZES = (64 * KiB, 1 * MiB, 16 * MiB)
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
if FULL:
    SIZES = (64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB)

#: DAOS-side field mappings swept against each other
BACKENDS = ("kv", "array", "dfs")
DEPTH = 4

#: per-cell grid: 2 params x 4 steps = 8 fields (size carries the cost)
GRID = dict(n_params=2, n_steps=4)


def _phase_stats(report, phase):
    p = report[phase]
    return {
        "bandwidth": p["bandwidth"],
        "fields_per_s": p["fields_per_s"],
        "p50": p["latency"]["p50"],
        "p99": p["latency"]["p99"],
    }


def _cell(backend, size, sync):
    params = FdbParams(backend=backend, field_bytes=size, depth=DEPTH,
                       sync=sync, **GRID)
    t0 = time.perf_counter()
    result, _cluster = run_fdb(params)
    wall = time.perf_counter() - t0
    report = build_report(result)
    return {
        "backend": backend,
        "size": size,
        "sync": sync,
        "fields": report["fields"],
        "archive": _phase_stats(report, "archive"),
        "retrieve": _phase_stats(report, "retrieve"),
        "sim_end": report["end_time"],
        "wall_seconds": round(wall, 3),  # informational; machine-dependent
    }


def _acceptance_cell():
    """100k fields archived, one param (10k fields) scatter-retrieved,
    timeline on; the report and timeline hashes are the bitwise gate."""
    params = FdbParams(
        backend="kv",
        n_params=10, n_levels=5, n_steps=10, n_members=4, n_dates=50,
        field_bytes=4 * KiB,
        depth=8,
        retrieve_params=("t2m",),
        timeline_interval=0.05,
    )
    t0 = time.perf_counter()
    result, cluster = run_fdb(params)
    wall = time.perf_counter() - t0
    store = cluster.sim.timeline.store
    report = build_report(result, store=store)
    report_bytes = json.dumps(report, sort_keys=True).encode("utf-8")
    timeline_bytes = json.dumps(
        store.to_json(), sort_keys=True
    ).encode("utf-8")
    return {
        "fields": report["fields"],
        "archived": report["archive"]["fields"],
        "retrieved": report["retrieve"]["fields"],
        "archive_bandwidth": report["archive"]["bandwidth"],
        "retrieve_bandwidth": report["retrieve"]["bandwidth"],
        "landmark": report["landmarks"][0],
        "timeline_windows": store.to_json()["n_windows"],
        "slo_breaches": len(report["slo_breaches"]),
        "report_sha256": hashlib.sha256(report_bytes).hexdigest(),
        "timeline_sha256": hashlib.sha256(timeline_bytes).hexdigest(),
        "sim_end": report["end_time"],
        "wall_seconds": round(wall, 3),  # informational; machine-dependent
    }


def _crossover(cells):
    """Smallest swept size where file-per-field DFS archives faster than
    the KV mapping (async cells); None when DFS never catches up."""
    by_size = {}
    for cell in cells:
        if not cell["sync"]:
            by_size.setdefault(cell["size"], {})[cell["backend"]] = cell
    for size in sorted(by_size):
        row = by_size[size]
        if row["dfs"]["archive"]["bandwidth"] > \
                row["kv"]["archive"]["bandwidth"]:
            return size
    return None


def run_sweep():
    cells = [
        _cell(backend, size, sync)
        for size in SIZES
        for backend in BACKENDS
        for sync in (True, False)
    ]
    lustre = [_cell("lustre", size, False) for size in SIZES]
    return {
        "sweep": cells,
        "lustre": lustre,
        "crossover_bytes": _crossover(cells),
        "acceptance": _acceptance_cell(),
    }


def _strip_wall(cell):
    return {k: v for k, v in cell.items() if k != "wall_seconds"}


def stable_json(doc) -> str:
    """Serialisation used for the determinism gate: wall_seconds is the
    one machine-dependent field, so it is stripped before comparing."""
    pruned = {
        "sweep": [_strip_wall(cell) for cell in doc["sweep"]],
        "lustre": [_strip_wall(cell) for cell in doc["lustre"]],
        "crossover_bytes": doc["crossover_bytes"],
        "acceptance": _strip_wall(doc["acceptance"]),
    }
    return json.dumps(pruned, sort_keys=True, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="artifacts/BENCH_fdb.json")
    parser.add_argument(
        "--stable-out", default=None,
        help="also write the machine-independent projection (the "
             "determinism-gate bytes) to this path",
    )
    args = parser.parse_args(argv)

    doc = run_sweep()
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")
    if args.stable_out:
        with open(args.stable_out, "w") as fh:
            fh.write(stable_json(doc))
            fh.write("\n")

    acc = doc["acceptance"]
    print(f"wrote {args.out}: {len(doc['sweep'])} sweep cells + "
          f"{len(doc['lustre'])} lustre cells + 100k acceptance")
    cross = doc["crossover_bytes"]
    print(f"  kv->dfs archive crossover: "
          f"{cross // KiB} KiB" if cross else "  no crossover in grid")
    print(f"  acceptance: {acc['archived']} archived, "
          f"{acc['retrieved']} retrieved, report sha "
          f"{acc['report_sha256'][:12]}..., "
          f"{acc['wall_seconds']}s wall")
    return 0


# -- pytest-benchmark entry points (make bench) ------------------------------


def test_fdb_sweep(benchmark):
    from conftest import run_once

    doc = run_once(benchmark, run_sweep)
    cells = {
        (c["backend"], c["size"], c["sync"]): c for c in doc["sweep"]
    }
    smallest, largest = min(SIZES), max(SIZES)

    # the paper's shape claim: native object mappings beat file-per-field
    # at small object sizes...
    small_dfs = cells[("dfs", smallest, False)]["archive"]["bandwidth"]
    assert cells[("kv", smallest, False)]["archive"]["bandwidth"] > small_dfs
    assert cells[("array", smallest, False)]["archive"]["bandwidth"] > \
        small_dfs
    # ...and striping wins once fields dwarf the per-file overhead
    assert cells[("dfs", largest, False)]["archive"]["bandwidth"] > \
        cells[("kv", largest, False)]["archive"]["bandwidth"]
    assert doc["crossover_bytes"] is not None
    assert smallest < doc["crossover_bytes"] <= largest

    # the async event-queue pipeline beats blocking I/O at depth >= 4
    for size in SIZES:
        for backend in BACKENDS:
            assert (
                cells[(backend, size, False)]["archive"]["fields_per_s"]
                > cells[(backend, size, True)]["archive"]["fields_per_s"]
            ), (backend, size)

    # the 100k-field acceptance run completed and hashed
    acc = doc["acceptance"]
    assert acc["archived"] == 100_000
    assert acc["retrieved"] == 10_000
    assert acc["landmark"]["fields"] == 100_000
    assert len(acc["report_sha256"]) == 64
    assert len(acc["timeline_sha256"]) == 64
    assert acc["timeline_windows"] > 0


if __name__ == "__main__":
    sys.exit(main())
