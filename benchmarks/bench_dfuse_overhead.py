"""Ablation A2: what the FUSE mount costs vs the native DFS API,
as a function of transfer size.

Small transfers amplify the per-syscall/per-request cost; at the paper's
1 MiB transfers the two converge — the quantitative basis for
"DFS API gives very similar performance to MPI-I/O using the DFuse
mount".
"""

from conftest import run_once

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior
from repro.units import GiB, KiB

TRANSFERS = ("64k", "256k", "1m")


def test_dfuse_vs_dfs_by_transfer_size(benchmark, bench_scale):
    def sweep():
        out = {}
        for transfer in TRANSFERS:
            for api in ("DFS", "POSIX"):
                cluster = nextgenio(client_nodes=1)
                params = IorParams(
                    api=api, file_per_proc=True, oclass="S2",
                    block_size="8m", transfer_size=transfer,
                )
                result = run_ior(cluster, params, ppn=bench_scale["ppn"])
                out[(api, transfer)] = result.max_write_bw
        return out

    data = run_once(benchmark, sweep)
    print()
    print(f"{'transfer':>9s} {'DFS GiB/s':>10s} {'DFuse GiB/s':>12s} "
          f"{'DFuse/DFS':>10s}")
    ratios = {}
    for transfer in TRANSFERS:
        dfs = data[("DFS", transfer)]
        posix = data[("POSIX", transfer)]
        ratios[transfer] = posix / dfs
        print(f"{transfer:>9s} {dfs / GiB:>10.2f} {posix / GiB:>12.2f} "
              f"{posix / dfs:>10.3f}")

    # FUSE overhead shrinks as transfers grow; at 1 MiB they converge.
    assert ratios["64k"] <= ratios["1m"]
    assert ratios["1m"] > 0.9
