"""Ablation A1: the full object-class ladder S1→S2→S4→S8→SX.

The paper sweeps S1/S2/SX; this fills in the intermediate classes to
show where the narrow-class hotspot penalty and the wide-class locality
penalty trade off (file-per-process writes at one contended node count).
"""

from conftest import run_once

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior
from repro.units import GiB

CLASSES = ("S1", "S2", "S4", "S8", "SX")


def test_oclass_ladder(benchmark, bench_scale):
    nodes = max(bench_scale["node_counts"])

    def sweep():
        out = {}
        for oclass in CLASSES:
            cluster = nextgenio(client_nodes=nodes)
            params = IorParams(
                api="DFS", file_per_proc=True, oclass=oclass,
                block_size=bench_scale["block_size"], transfer_size="1m",
            )
            result = run_ior(cluster, params, ppn=bench_scale["ppn"])
            out[oclass] = (result.max_write_bw, result.max_read_bw)
        return out

    ladder = run_once(benchmark, sweep)
    print()
    print(f"{'class':>6s} {'write GiB/s':>12s} {'read GiB/s':>12s}"
          f"   ({nodes} client nodes, file-per-process)")
    for oclass, (write_bw, read_bw) in ladder.items():
        print(f"{oclass:>6s} {write_bw / GiB:>12.2f} {read_bw / GiB:>12.2f}")

    # The intermediate classes bridge S1 and SX: S4 and S8 must not be
    # pathological relative to their neighbours.
    writes = {oc: w for oc, (w, _) in ladder.items()}
    assert writes["S4"] > 0.5 * max(writes["S2"], writes["S8"])
    assert writes["S8"] > 0.5 * max(writes["S4"], writes["SX"])
