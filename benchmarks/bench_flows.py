"""Flow-solver throughput bench — the repo's first pinned BENCH_*.json.

Two layers:

- *Solver churn scenarios*: scripted, seeded sequences of flow open /
  close / ``set_cap`` / ``set_link_capacity`` mutations on synthetic
  topologies shaped like the workloads we care about (the bipartite
  client-NIC x target pattern of the IOR figures, striped flows, and
  disjoint islands where the incremental solver's component skipping
  shines).  Reported as solver ops/sec: mutations divided by the
  wall-clock seconds spent inside ``FlowNetwork._reallocate``.
- *Figure point*: the 16-node x 16-ppn fig-1 DFS point end to end under
  both solvers — wall time, solver seconds, the solver speedup (the
  acceptance criterion: >= 5x), and byte-identity of the bandwidths.

``python benchmarks/bench_flows.py`` writes ``artifacts/BENCH_flows.json``
(the ``make bench-flows`` artifact); ``--check`` additionally compares
against the committed baseline ``benchmarks/BENCH_flows.json`` and exits
nonzero on a >20% ops/sec regression (see
``conftest.check_flows_regression``).  Raw ops/sec is machine-dependent,
so the gate compares incremental/reference speedup ratios — the frozen
reference solver doubles as a workload-matched machine calibrator.  A
generic machine-speed calibration timing is still recorded per scenario
for human cross-machine reading of the absolute numbers.
"""

import argparse
import json
import os
import random
import sys
import time

import numpy as np

from conftest import run_once

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior
from repro.network.flows import FlowNetwork
from repro.sim import Simulator

SOLVERS = ("reference", "incremental")

#: mutations per churn scenario measurement
N_OPS = 2000


def calibrate(trials: int = 5) -> float:
    """Seconds for a fixed python+numpy workload: the machine-speed unit.

    ops/sec x calibration_seconds is machine-invariant (up to noise), so
    baselines recorded on one machine can gate runs on another.  Best of
    ``trials`` — the minimum is the standard robust timing estimator and
    discards cold-start effects (allocator, numpy dispatch caches).
    """
    def one() -> float:
        t0 = time.perf_counter()
        acc = 0.0
        arr = np.arange(4096, dtype=float)
        for i in range(400):
            acc += float((arr * 1.0001 + i).sum())
            acc += sum(divmod(i * 7919, 97))
        assert acc != 0.0
        return time.perf_counter() - t0

    return min(one() for _ in range(trials))


# -- churn scenarios ---------------------------------------------------------


def topo_bipartite(net, rng):
    """16 client NICs x 32 storage targets — the figure-sweep shape."""
    nics = [net.add_link(f"nic{i}", 1e10) for i in range(16)]
    tgts = [net.add_link(f"tgt{i}", 3e9) for i in range(32)]

    def maker():
        return [(rng.choice(nics), 1.0), (rng.choice(tgts), 1.0)]

    return maker


def topo_striped(net, rng):
    """Flows striped over 4 of 32 targets plus a NIC (fractional weights)."""
    nics = [net.add_link(f"nic{i}", 1e10) for i in range(8)]
    tgts = [net.add_link(f"tgt{i}", 3e9) for i in range(32)]

    def maker():
        chosen = rng.sample(tgts, 4)
        return [(rng.choice(nics), 1.0)] + [(t, 0.25) for t in chosen]

    return maker


def topo_islands(net, rng):
    """16 disjoint 2-link islands: mutations touch one island at a time,
    the incremental solver's best case (tiny components)."""
    islands = [
        (net.add_link(f"i{i}a", 1e10), net.add_link(f"i{i}b", 3e9))
        for i in range(16)
    ]

    def maker():
        a, b = rng.choice(islands)
        return [(a, 1.0), (b, 1.0)]

    return maker


SCENARIOS = {
    "bipartite": topo_bipartite,
    "striped": topo_striped,
    "islands": topo_islands,
}


def _churn_once(solver: str, scenario: str, n_ops: int = N_OPS) -> float:
    """Run the scripted mutation sequence once; return mutations per
    solver second.  Seeded: every call performs the identical ops."""
    rng = random.Random(0xF105)
    sim = Simulator()
    net = FlowNetwork(sim, solver=solver)
    maker = SCENARIOS[scenario](net, rng)
    flows = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.5 or not flows:
            flows.append(net.open(maker(), cap=rng.uniform(1e8, 1e10)))
        elif roll < 0.75:
            net.close(flows.pop(rng.randrange(len(flows))))
        else:
            flows[rng.randrange(len(flows))].set_cap(rng.uniform(1e8, 1e10))
    assert net.reallocations == n_ops
    return n_ops / net.solver_seconds


def churn_ops_per_sec(
    solver: str, scenario: str, n_ops: int = N_OPS, trials: int = 3
) -> float:
    """Best-of-``trials`` churn throughput (first run doubles as warmup)."""
    return max(_churn_once(solver, scenario, n_ops) for _ in range(trials))


def churn_pair(scenario: str, n_ops: int = N_OPS, trials: int = 3) -> dict:
    """Interleaved incremental/reference trials for one scenario.

    The speedup ratio is taken per interleaved pair (so slow drifting
    machine load hits both sides alike) and reported as the median
    across trials (so a single background-load spike cannot corrupt
    the gate figure).  ops/sec cells report the best trial.
    """
    inc_best = ref_best = 0.0
    ratios = []
    for _ in range(trials):
        inc = _churn_once("incremental", scenario, n_ops)
        ref = _churn_once("reference", scenario, n_ops)
        ratios.append(inc / ref)
        inc_best = max(inc_best, inc)
        ref_best = max(ref_best, ref)
    ratios.sort()
    return {
        "incremental": {"ops_per_sec": round(inc_best, 1)},
        "reference": {"ops_per_sec": round(ref_best, 1)},
        "speedup": round(ratios[len(ratios) // 2], 2),
    }


def run_figure_point(solver: str):
    """The 16x16 quick-scale fig-1 DFS FPP point under ``solver``."""
    cluster = nextgenio(client_nodes=16, flow_solver=solver)
    params = IorParams(api="DFS", file_per_proc=True, interleaved=False,
                      oclass="SX", block_size="16m", transfer_size="1m")
    t0 = time.perf_counter()
    result = run_ior(cluster, params, ppn=16)
    wall = time.perf_counter() - t0
    flownet = cluster.fabric.flownet
    return {
        "wall_seconds": round(wall, 4),
        "solver_seconds": round(flownet.solver_seconds, 4),
        "reallocations": flownet.reallocations,
        "solved_flows": flownet.solved_flows,
        "write_bw": result.max_write_bw,
        "read_bw": result.max_read_bw,
    }


def collect() -> dict:
    out = {
        "schema": "repro.bench.flows/1",
        "calibration_seconds": round(calibrate(), 4),
        "n_ops": N_OPS,
        "scenarios": {},
    }
    for scenario in sorted(SCENARIOS):
        # calibration re-timed adjacent to each scenario: the absolute
        # ops/sec numbers stay human-comparable across machines (the
        # regression gate itself uses the speedup ratio, not these)
        cell = {"calibration_seconds": round(calibrate(), 5)}
        cell.update(churn_pair(scenario))
        out["scenarios"][scenario] = cell
    point = {s: run_figure_point(s) for s in SOLVERS}
    point["solver_speedup"] = round(
        point["reference"]["solver_seconds"]
        / point["incremental"]["solver_seconds"], 2,
    )
    point["byte_identical"] = (
        point["reference"]["write_bw"] == point["incremental"]["write_bw"]
        and point["reference"]["read_bw"] == point["incremental"]["read_bw"]
    )
    point["nodes"], point["ppn"], point["block"] = 16, 16, "16m"
    out["figure_point"] = point
    return out


# -- pytest-benchmark entry points ------------------------------------------


def test_solver_churn_throughput(benchmark):
    def sweep():
        return {
            (scenario, solver): churn_ops_per_sec(solver, scenario)
            for scenario in sorted(SCENARIOS)
            for solver in SOLVERS
        }

    rates = run_once(benchmark, sweep)
    for scenario in SCENARIOS:
        inc = rates[(scenario, "incremental")]
        ref = rates[(scenario, "reference")]
        print(f"{scenario}: incremental {inc:,.0f} ops/s, "
              f"reference {ref:,.0f} ops/s ({inc / ref:.2f}x)")
        # the islands shape must show the component-skipping win
        if scenario == "islands":
            assert inc > ref, (inc, ref)


def test_figure_point_byte_identity_and_speedup(benchmark):
    def point():
        return {s: run_figure_point(s) for s in SOLVERS}

    cells = run_once(benchmark, point)
    ref, inc = cells["reference"], cells["incremental"]
    assert (ref["write_bw"], ref["read_bw"]) == (
        inc["write_bw"], inc["read_bw"]
    )
    # acceptance floor with CI-noise margin (locally measured ~5.8x;
    # the committed baseline records the honest number)
    assert ref["solver_seconds"] / inc["solver_seconds"] >= 4.0


# -- CLI ---------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="artifacts/BENCH_flows.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline "
                             "benchmarks/BENCH_flows.json; exit 1 on a "
                             ">20%% normalized ops/sec regression")
    args = parser.parse_args(argv)

    result = collect()
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    point = result["figure_point"]
    print(f"wrote {args.out}", file=sys.stderr)
    print(f"figure point: solver speedup {point['solver_speedup']}x, "
          f"byte_identical={point['byte_identical']}", file=sys.stderr)

    if args.check:
        from conftest import check_flows_regression, load_flows_baseline

        baseline = load_flows_baseline()
        failures = check_flows_regression(result, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
