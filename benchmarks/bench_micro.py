"""Micro-benchmarks of the substrates themselves.

These time the *simulator* (wall clock), not simulated hardware: the
fluid-flow allocator under churn, Raft commit throughput, B+-tree and
extent-tree operation rates. They guard the repo against performance
regressions that would make the paper-scale sweeps impractical.
"""

import pytest

from repro.consensus.raft import RaftCluster
from repro.consensus.state_machine import AppendLogMachine
from repro.daos.vos.btree import BPlusTree
from repro.daos.vos.extent import ExtentTree
from repro.network import Fabric
from repro.network.flows import FlowNetwork
from repro.sim import RngStreams, Simulator


def test_flow_allocator_churn(benchmark):
    """Open/close 400 striped flows over 64 target links."""

    def churn():
        sim = Simulator()
        net = FlowNetwork(sim)
        targets = [net.add_link(f"t{i}", 1e9) for i in range(64)]
        nic = net.add_link("nic", 10e9)
        flows = []
        for i in range(400):
            chosen = [(targets[(i * 7 + k) % 64], 1 / 8) for k in range(8)]
            flows.append(net.open([(nic, 1.0)] + chosen))
            if len(flows) > 100:
                net.close(flows.pop(0))
        for flow in flows:
            net.close(flow)
        return net.reallocations

    reallocations = benchmark(churn)
    assert reallocations >= 800


def test_raft_commit_throughput(benchmark):
    """500 commands through a 3-replica raft group."""

    def commits():
        sim = Simulator()
        fabric = Fabric(sim)
        addrs = [fabric.add_node(f"n{i}", 10e9) for i in range(3)]
        cluster = RaftCluster(
            sim, fabric, addrs, AppendLogMachine, rng=RngStreams(seed=4)
        )

        def client():
            leader = yield from cluster.wait_leader()
            for i in range(500):
                status, _ = yield leader.propose(("op", i))
                assert status == "ok"

        task = sim.spawn(client())
        sim.run_until_complete(task)
        # the leader's machine is fully applied; followers may trail by
        # the in-flight heartbeat
        return max(len(m.applied) for m in cluster.machines)

    applied = benchmark.pedantic(commits, rounds=1, iterations=1)
    assert applied == 500


def test_btree_ops(benchmark):
    def ops():
        tree = BPlusTree(capacity=32)
        for i in range(20_000):
            tree.insert((i * 2654435761) % 1_000_003, i)
        hits = sum(1 for i in range(20_000)
                   if tree.get((i * 2654435761) % 1_000_003) is not None)
        for i in range(0, 20_000, 2):
            tree.delete((i * 2654435761) % 1_000_003)
        return hits

    hits = benchmark(ops)
    assert hits == 20_000


def test_extent_tree_overlay(benchmark):
    from repro.daos.vos.payload import PatternPayload

    def ops():
        tree = ExtentTree()
        for i in range(5_000):
            offset = (i * 977) % 100_000
            tree.write(offset, PatternPayload(1, offset, 512), epoch=i)
        return len(tree)

    extents = benchmark(ops)
    assert extents > 0
