"""Client-side cache ablation — cached vs uncached DFuse FPP (fig-1 style).

Series: cache modes {none, readonly, writeback}, IOR file-per-process
over the POSIX/DFuse interface, bandwidth vs client nodes. The write
panel carries the subsystem's headline claim: write-behind coalescing
turns per-transfer dfuse windows into large contiguous DFS writes, so
writeback must beat pass-through at every node count.
"""

from conftest import run_once

from repro.bench import cache_fpp_sweep, render_figure

NODE_COUNTS = (1, 4, 8)
MODES = ("none", "readonly", "writeback")


def test_cache_mode_fpp_sweep(benchmark):
    def sweep():
        return cache_fpp_sweep(node_counts=NODE_COUNTS, modes=MODES)

    read_fig, write_fig = run_once(benchmark, sweep)
    print()
    print(render_figure(read_fig))
    print()
    print(render_figure(write_fig))

    for nodes in NODE_COUNTS:
        base_w = write_fig.series_by_label("none").at(nodes)
        wb_w = write_fig.series_by_label("writeback").at(nodes)
        assert wb_w > base_w * 1.2, (nodes, wb_w, base_w)

        base_r = read_fig.series_by_label("none").at(nodes)
        for mode in ("readonly", "writeback"):
            # caching never regresses reads (page-cache hits on the IOR
            # read-back phase at worst break even)
            assert read_fig.series_by_label(mode).at(nodes) >= base_r * 0.98

    # readonly leaves the write path untouched: pass-through bandwidth
    for nodes in NODE_COUNTS:
        ro_w = write_fig.series_by_label("readonly").at(nodes)
        base_w = write_fig.series_by_label("none").at(nodes)
        assert abs(ro_w - base_w) / base_w < 0.05
