#!/usr/bin/env python
"""Regenerate the paper's figures as ASCII tables.

Usage::

    python benchmarks/run_figures.py                 # quick scale
    python benchmarks/run_figures.py --full          # paper scale
    python benchmarks/run_figures.py --figure 1a     # one panel
    python benchmarks/run_figures.py --contrast      # the §IV claim
    python benchmarks/run_figures.py --nodes 16,32,64 --figure 1b
    python benchmarks/run_figures.py --solver reference  # oracle solver

The full sweep (1..16 client nodes x 16 ppn, 64 MiB blocks) regenerates
the exact series reported in EXPERIMENTS.md.  ``--nodes`` overrides the
node-count axis with an explicit comma-separated list; with the default
incremental flow solver, sweeps up to 64-128 client nodes finish in
minutes (the reference solver is quadratic in flow count — pick it only
to cross-check a point).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import (
    FULL_NODE_COUNTS,
    QUICK_NODE_COUNTS,
    fig1_fpp,
    fig1_traced_point,
    fig2_shared,
    lustre_contrast,
    render_figure,
)
from repro.units import fmt_bw


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale sweep (slow: ~15-30 min)")
    parser.add_argument("--figure", choices=["1a", "1b", "2a", "2b", "all"],
                        default="all")
    parser.add_argument("--contrast", action="store_true",
                        help="also run the DAOS-vs-Lustre contrast")
    parser.add_argument("--ppn", type=int, default=16)
    parser.add_argument("--nodes", metavar="N,N,...",
                        help="explicit client-node counts for the sweep "
                             "axis, e.g. 8,16,32,64 (overrides --full)")
    parser.add_argument("--solver", choices=["incremental", "reference"],
                        help="flow-solver engine (default: incremental, "
                             "or $REPRO_FLOW_SOLVER)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="run ONE instrumented fig-1 point instead of "
                             "the sweep and write its Chrome trace JSON")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="with/instead of --trace-out: write the "
                             "instrumented point's metrics dump")
    parser.add_argument("--timeline-out", metavar="PATH",
                        help="with/instead of --trace-out: write the "
                             "instrumented point's time-series JSON")
    parser.add_argument("--timeline-interval", type=float, default=0.01,
                        metavar="SECONDS",
                        help="scrape interval for --timeline-out "
                             "(default 0.01 simulated seconds)")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="RULE",
                        help="SLO/stall rule for the instrumented point "
                             "(repeatable; see repro.obs.slo)")
    parser.add_argument("--cache-mode",
                        choices=["none", "readonly", "writeback"],
                        default="none",
                        help="client cache mode for the instrumented point")
    args = parser.parse_args(argv)

    if args.solver:
        # catch-all for code paths without an explicit flow_solver
        # parameter (the traced point, the Lustre contrast)
        os.environ["REPRO_FLOW_SOLVER"] = args.solver

    node_counts = FULL_NODE_COUNTS if args.full else QUICK_NODE_COUNTS
    if args.nodes:
        try:
            node_counts = tuple(
                int(n) for n in args.nodes.split(",") if n.strip()
            )
        except ValueError:
            parser.error(f"--nodes expects a comma-separated list of "
                         f"integers, got {args.nodes!r}")
        if not node_counts or any(n < 1 for n in node_counts):
            parser.error("--nodes counts must be positive integers")
    block = "64m" if args.full else "16m"

    t0 = time.time()
    if args.trace_out or args.metrics_out or args.timeline_out:
        # Instrumented single point: the sweep itself stays untraced (a
        # full sweep's span list would dwarf the figures it produces).
        result = fig1_traced_point(
            block_size=block,
            ppn=args.ppn,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            cache_mode=args.cache_mode,
            timeline_out=args.timeline_out,
            timeline_interval=args.timeline_interval,
            slo=args.slo or None,
        )
        print(result.summary())
        for path in (args.trace_out, args.metrics_out, args.timeline_out):
            if path:
                print(f"wrote {path}", file=sys.stderr)
        print(f"(generated in {time.time() - t0:.1f}s wall time)",
              file=sys.stderr)
        return 0
    if args.figure in ("1a", "1b", "all"):
        fig1a, fig1b = fig1_fpp(node_counts, block, args.ppn,
                                flow_solver=args.solver)
        if args.figure in ("1a", "all"):
            print(render_figure(fig1a), end="\n\n")
        if args.figure in ("1b", "all"):
            print(render_figure(fig1b), end="\n\n")
    if args.figure in ("2a", "2b", "all"):
        fig2a, fig2b = fig2_shared(node_counts, block, args.ppn,
                                   flow_solver=args.solver)
        if args.figure in ("2a", "all"):
            print(render_figure(fig2a), end="\n\n")
        if args.figure in ("2b", "all"):
            print(render_figure(fig2b), end="\n\n")
    if args.contrast:
        cells = lustre_contrast(nodes=min(4, max(node_counts)),
                                block_size=block, ppn=args.ppn)
        print("Write bandwidth, easy vs hard:")
        print(f"  DAOS   fpp {fmt_bw(cells['daos_fpp_write'])}, "
              f"shared {fmt_bw(cells['daos_shared_write'])}")
        print(f"  Lustre fpp {fmt_bw(cells['lustre_fpp_write'])}, "
              f"shared {fmt_bw(cells['lustre_shared_write'])}")
    print(f"(generated in {time.time() - t0:.1f}s wall time)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
