"""Figure 1 (a: read, b: write) — IOR file-per-process ("easy").

Series: {DFS (DAOS), MPI-IO over DFuse, HDF5 over DFuse} x {S1, S2, SX},
bandwidth vs number of client nodes. Regenerates both panels from one
sweep and checks the paper's headline orderings.
"""

from conftest import run_once

from repro.bench import fig1_fpp, render_figure
from repro.units import GiB


def test_fig1_file_per_process(benchmark, bench_scale):
    def sweep():
        return fig1_fpp(
            node_counts=bench_scale["node_counts"],
            block_size=bench_scale["block_size"],
            ppn=bench_scale["ppn"],
        )

    fig1a, fig1b = run_once(benchmark, sweep)
    print()
    print(render_figure(fig1a))
    print()
    print(render_figure(fig1b))

    small = min(s.xs[0] for s in fig1a.series)
    large = max(p.x for s in fig1a.series for p in s.points)

    # Fig 1a: S2 best read for the DAOS/DFS interface at every count.
    for x in (small, large):
        s2 = fig1b.series_by_label("DAOS S2")  # noqa: F841 (write checked below)
        r_s2 = fig1a.series_by_label("DAOS S2").at(x)
        assert r_s2 >= fig1a.series_by_label("DAOS SX").at(x)
        assert r_s2 >= fig1a.series_by_label("DAOS S1").at(x) * 0.98

    # Fig 1b: SX lower for few writers, best under high contention.
    w_small = {oc: fig1b.series_by_label(f"DAOS {oc}").at(small)
               for oc in ("S1", "S2", "SX")}
    assert w_small["SX"] < w_small["S2"]
    w_large = {oc: fig1b.series_by_label(f"DAOS {oc}").at(large)
               for oc in ("S1", "S2", "SX")}
    assert w_large["SX"] >= max(w_large["S1"], w_large["S2"])

    # DFS ~ MPI-IO over DFuse; HDF5 over DFuse much lower.
    for x in (small, large):
        dfs = fig1b.series_by_label("DAOS S2").at(x)
        mpiio = fig1b.series_by_label("MPI-IO S2").at(x)
        hdf5 = fig1b.series_by_label("HDF5 S2").at(x)
        assert abs(dfs - mpiio) / dfs < 0.12
        assert hdf5 < 0.6 * dfs
