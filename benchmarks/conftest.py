"""Benchmark configuration.

Default scale keeps ``pytest benchmarks/ --benchmark-only`` in minutes:
node counts (1, 4), 16 MiB blocks. Set ``REPRO_BENCH_FULL=1`` for the
paper-scale sweep (1..16 nodes, 64 MiB blocks) used to fill
EXPERIMENTS.md — or run ``python benchmarks/run_figures.py --full``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

# the quick sweep includes 8 nodes: the S2->SX write crossover regime
NODE_COUNTS = (1, 2, 4, 8, 16) if FULL else (1, 8)
BLOCK = "64m" if FULL else "16m"
PPN = 16


@pytest.fixture(scope="session")
def bench_scale():
    return {"node_counts": NODE_COUNTS, "block_size": BLOCK, "ppn": PPN}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
