"""Benchmark configuration.

Default scale keeps ``pytest benchmarks/ --benchmark-only`` in minutes:
node counts (1, 4), 16 MiB blocks. Set ``REPRO_BENCH_FULL=1`` for the
paper-scale sweep (1..16 nodes, 64 MiB blocks) used to fill
EXPERIMENTS.md — or run ``python benchmarks/run_figures.py --full``.
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

# the quick sweep includes 8 nodes: the S2->SX write crossover regime
NODE_COUNTS = (1, 2, 4, 8, 16) if FULL else (1, 8)
BLOCK = "64m" if FULL else "16m"
PPN = 16


@pytest.fixture(scope="session")
def bench_scale():
    return {"node_counts": NODE_COUNTS, "block_size": BLOCK, "ppn": PPN}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# -- flow-solver perf gate (bench_flows.py / make bench-flows) ---------------

#: committed baseline artifact; regenerate with
#:   python benchmarks/bench_flows.py --out benchmarks/BENCH_flows.json
FLOWS_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_flows.json"
)

#: fail the gate when normalized incremental-solver ops/sec drops more
#: than this fraction below the committed baseline
FLOWS_REGRESSION_THRESHOLD = 0.20


def load_flows_baseline(path: str = FLOWS_BASELINE_PATH) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check_flows_regression(current: dict, baseline: dict) -> list:
    """Compare a fresh bench_flows run against the committed baseline.

    Raw ops/sec is machine-dependent, so the gate compares each
    scenario's incremental/reference *speedup ratio*: the reference
    solver is frozen by definition (it is the oracle — its arithmetic
    may never change), which makes it a workload-matched calibrator
    measured on the same machine seconds apart.  A drop in the ratio
    means the incremental solver itself got slower.  Returns a list of
    human-readable failure strings (empty = gate passed).
    """
    failures = []
    floor = 1.0 - FLOWS_REGRESSION_THRESHOLD
    for name, base_cell in baseline["scenarios"].items():
        cur_cell = current["scenarios"].get(name)
        if cur_cell is None:
            failures.append(f"scenario {name!r} missing from current run")
            continue
        base_ratio = base_cell["speedup"]
        cur_ratio = cur_cell["speedup"]
        if cur_ratio < base_ratio * floor:
            failures.append(
                f"scenario {name!r}: incremental/reference ops ratio "
                f"{cur_ratio:.2f}x is below {floor:.0%} of baseline "
                f"{base_ratio:.2f}x"
            )
    point = current.get("figure_point", {})
    if not point.get("byte_identical", False):
        failures.append("figure point: solvers no longer byte-identical")
    # solver_speedup is a same-machine ratio; 4x is the acceptance floor
    # (>= 5x) minus CI-noise margin
    if point.get("solver_speedup", 0.0) < 4.0:
        failures.append(
            f"figure point: solver speedup {point.get('solver_speedup')}x "
            "fell below the 4x floor"
        )
    return failures
