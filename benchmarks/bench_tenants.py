"""Multi-tenant serving sweep — tenant count x arrival rate x QoS.

Each cell runs an open-loop fleet (the default bulk/kv/meta mix) against
a small cluster and records the numbers the subsystem exists to report:
per-fleet tail latency (exact p50/p99/p999 over every request), Jain
byte-share fairness, rejection rate, and QoS wait time.  A final *chaos*
cell re-runs the noisy-neighbour scenario from
``tests/tenants/test_chaos_qos.py`` — three throttled hogs plus one
latency-sensitive tenant racing a rebuild — and records the light
tenant's tail with QoS off vs on.

``python benchmarks/bench_tenants.py --out artifacts/BENCH_tenants.json``
writes the artifact; every run is seeded end to end, so ``make
bench-tenants`` runs it twice and ``cmp``s the outputs — the artifact is
a determinism gate as well as a perf record.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.cluster import build_cluster, small_cluster
from repro.faults import ExcludeTarget, FaultSchedule
from repro.hardware.specs import EngineSpec, FabricSpec
from repro.tenants import (
    BulkWork,
    Dispatcher,
    KvBurstWork,
    MetaStormWork,
    PoissonArrivals,
    ServingConfig,
    TenantSpec,
    build_report,
    make_tenants,
)
from repro.units import GiB, KiB, MiB

#: quick sweep grid; REPRO_BENCH_FULL=1 widens it to the 1000-tenant point
TENANT_COUNTS = (8, 32)
RATES = (1.0, 4.0)
DURATION = 4.0

#: small jobs keep every cell sub-second of wall time
MIX = (
    (BulkWork(nbytes=64 * KiB, xfer=32 * KiB), 2),
    (KvBurstWork(n_ops=4), 1),
    (MetaStormWork(n_ops=2), 1),
)

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
if FULL:
    TENANT_COUNTS = (8, 32, 128, 1000)


def _cell(n_tenants, rate, qos_enabled):
    fleet = make_tenants(n_tenants, rate=rate, mix=MIX)
    cluster = small_cluster()
    config = ServingConfig(
        duration=DURATION,
        qos_enabled=qos_enabled,
        default_qos_bw=8 * MiB,
        max_inflight=128,
        max_inflight_per_tenant=2,
    )
    dispatcher = Dispatcher(
        cluster, fleet, PoissonArrivals(cluster.rng), config
    )
    t0 = time.perf_counter()
    result = cluster.run(dispatcher.serve())
    wall = time.perf_counter() - t0
    report = build_report(result)
    return {
        "tenants": n_tenants,
        "rate": rate,
        "qos": qos_enabled,
        "arrivals": report["totals"]["arrivals"],
        "completed": report["totals"]["completed"],
        "failed": report["totals"]["failed"],
        "rejection_rate": report["rejection_rate"],
        "latency": report["latency"],
        "fairness_bytes": report["fairness_bytes"],
        "throughput_bytes_per_s": report["throughput"],
        "qos_waited": sum(
            t["qos_waited"] for t in report["tenants"].values()
        ),
        "sim_end": report["end_time"],
        "wall_seconds": round(wall, 3),  # informational; machine-dependent
    }


def _chaos_cell(qos_enabled):
    """The test_chaos_qos scenario: hogs + rebuild vs one light tenant."""
    cluster = build_cluster(
        server_nodes=2,
        client_nodes=2,
        engine_spec=EngineSpec(
            targets=1, target_write_bw=200e6, target_read_bw=400e6
        ),
        fabric_spec=FabricSpec(rpc_timeout=0.5),
        capacity_per_target=4 * GiB,
        seed=77,
    )
    cluster.observe(tracing=False, metrics=True, timeline_interval=0.5,
                    slo_rules=["tenant.request.latency{tenant=light} "
                               "p99 < 0.05 over 2 windows"])
    hogs = [
        TenantSpec(id=f"hog{i}",
                   workload=BulkWork(nbytes=16 * MiB, xfer=1 * MiB),
                   rate=16.0, qos_bw=2 * MiB, qos_burst=2 * MiB)
        for i in range(3)
    ]
    light = TenantSpec(id="light",
                       workload=BulkWork(nbytes=512 * KiB, xfer=512 * KiB),
                       rate=5.0, qos_bw=1e12)
    config = ServingConfig(
        duration=6.0, qos_enabled=qos_enabled, max_inflight=32,
        max_inflight_per_tenant=4, aio_depth=16, n_containers=2,
        oclass="RP_2G1",
    )
    dispatcher = Dispatcher(
        cluster, hogs + [light], PoissonArrivals(cluster.rng), config
    )
    cluster.inject(
        FaultSchedule().at(2.0, ExcludeTarget(tid=0, permanent=True))
    )
    result = cluster.run(dispatcher.serve())
    report = build_report(result, store=cluster.sim.timeline.store)
    rebuild_bytes = sum(
        counter.value
        for name, counter in cluster.sim.metrics.counters.items()
        if name.startswith("rebuild.bytes_moved")
    )
    return {
        "qos": qos_enabled,
        "light_latency": report["tenants"]["light"]["latency"],
        "hog_bytes": sum(
            report["tenants"][f"hog{i}"]["bytes"] for i in range(3)
        ),
        "rebuild_bytes": rebuild_bytes,
        "slo_breaches": {
            tid: len(events)
            for tid, events in report["slo_breaches"].items()
        },
        "fairness_bytes": report["fairness_bytes"],
    }


def run_sweep():
    cells = [
        _cell(n, rate, qos)
        for n in TENANT_COUNTS
        for rate in RATES
        for qos in (False, True)
    ]
    chaos = [_chaos_cell(False), _chaos_cell(True)]
    return {"sweep": cells, "chaos": chaos}


def stable_json(doc) -> str:
    """Serialisation used for the determinism gate: wall_seconds is the
    one machine-dependent field, so it is stripped before comparing."""
    pruned = {
        "sweep": [
            {k: v for k, v in cell.items() if k != "wall_seconds"}
            for cell in doc["sweep"]
        ],
        "chaos": doc["chaos"],
    }
    return json.dumps(pruned, sort_keys=True, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="artifacts/BENCH_tenants.json")
    parser.add_argument(
        "--stable-out", default=None,
        help="also write the machine-independent projection (the "
             "determinism-gate bytes) to this path",
    )
    args = parser.parse_args(argv)

    doc = run_sweep()
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")
    if args.stable_out:
        with open(args.stable_out, "w") as fh:
            fh.write(stable_json(doc))
            fh.write("\n")

    chaos_off, chaos_on = doc["chaos"]
    print(f"wrote {args.out}: {len(doc['sweep'])} sweep cells + chaos pair")
    print(f"  chaos light p99: qos-off {chaos_off['light_latency']['p99']*1e3:.1f} ms "
          f"(breaches {chaos_off['slo_breaches']}), "
          f"qos-on {chaos_on['light_latency']['p99']*1e3:.1f} ms "
          f"(breaches {chaos_on['slo_breaches']})")
    return 0


# -- pytest-benchmark entry points (make bench) ------------------------------


def test_tenant_sweep(benchmark):
    from conftest import run_once

    doc = run_once(benchmark, run_sweep)
    for cell in doc["sweep"]:
        assert cell["failed"] == 0
        assert cell["latency"]["p999"] >= cell["latency"]["p99"] > 0
        assert 0.0 < cell["fairness_bytes"] <= 1.0
    chaos_off, chaos_on = doc["chaos"]
    # the headline claim: QoS keeps the light tenant inside its SLO
    assert chaos_off["slo_breaches"] == {"light": 1}
    assert chaos_on["slo_breaches"] == {}
    assert chaos_on["light_latency"]["p99"] < \
        chaos_off["light_latency"]["p99"]


if __name__ == "__main__":
    sys.exit(main())
