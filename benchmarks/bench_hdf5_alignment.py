"""Ablation A4: the HDF5 alignment property rescues file-per-process.

The Figure-1 HDF5 gap is driven by raw data living at unaligned offsets
(HDF5 default alignment=1) which engages the sec2 staging path through
DFuse. Creating the files with alignment = DFS chunk size restores
direct I/O — turning the "much lower" HDF5 lines back into MPI-IO-class
lines. (This is the actionable tuning recommendation of the study.)
"""

from conftest import run_once

from repro.cluster import nextgenio
from repro.daos.api import PatternPayload
from repro.dfs import Dfs
from repro.dfuse import DFuseMount
from repro.hdf5 import H5File, Sec2Vfd
from repro.units import GiB, MiB


def _h5_fpp_write_bw(alignment: int, procs: int = 16, nbytes: int = 16 * MiB):
    cluster = nextgenio(client_nodes=1)
    client = cluster.new_client(0)

    def setup():
        pool = yield from client.connect_pool("tank")
        cont = yield from pool.create_container(
            f"h5align-{alignment}", oclass="S2"
        )
        dfs = yield from Dfs.mount(cont)
        return dfs

    dfs = cluster.run(setup())

    def writer(i):
        mount = DFuseMount(dfs)

        def go():
            h5 = yield from H5File.create(
                Sec2Vfd(mount), f"/f{i}.h5", alignment=alignment
            )
            ds = yield from h5.create_dataset("data", (nbytes,), dtype="u1")
            start = cluster.sim.now
            for k in range(nbytes // MiB):
                yield from ds.write(
                    (k * MiB,), (MiB,),
                    PatternPayload(seed=i, origin=k * MiB, nbytes=MiB),
                )
            elapsed = cluster.sim.now - start
            yield from h5.close()
            return elapsed

        return go()

    tasks = [cluster.sim.spawn(writer(i)).defuse() for i in range(procs)]
    slowest = max(cluster.sim.run_until_complete(t) for t in tasks)
    return procs * nbytes / slowest


def test_alignment_rescues_hdf5(benchmark, bench_scale):
    def sweep():
        return {
            "default (1 B)": _h5_fpp_write_bw(1),
            "aligned (1 MiB)": _h5_fpp_write_bw(MiB),
        }

    data = run_once(benchmark, sweep)
    print()
    for label, bw in data.items():
        print(f"HDF5 fpp write, alignment {label:>15s}: {bw / GiB:6.2f} GiB/s")
    assert data["aligned (1 MiB)"] > 2.0 * data["default (1 B)"]
