"""Extension E3: an IO500-style composite score.

The paper points at DAOS's IO-500 rankings as the evidence of its
bandwidth *and* metadata scalability; this runs the list's five phases
(ior-easy/hard x write/read + mdtest) on the simulated system and
applies the IO500 scoring rule.
"""

from conftest import run_once

from repro.bench.io500 import run_io500
from repro.cluster import nextgenio


def test_io500_composite(benchmark, bench_scale):
    nodes = min(4, max(bench_scale["node_counts"]))

    def sweep():
        cluster = nextgenio(client_nodes=nodes)
        return run_io500(
            cluster,
            ppn=bench_scale["ppn"],
            easy_block=bench_scale["block_size"],
            hard_transfers=32,
            md_files=32,
        )

    result = run_once(benchmark, sweep)
    print()
    print(result.summary())
    assert result.bw_score > 0
    assert result.md_score > 0
    # the lockless hard path keeps the hard/easy write ratio healthy
    # (47008-byte ops are overhead-bound everywhere, but nothing
    # collapses) — the property that puts DAOS systems at the top of
    # the real list, where this ratio typically sits around 0.1-0.5
    ratio = (result.bandwidth["ior-hard-write"]
             / result.bandwidth["ior-easy-write"])
    assert ratio > 0.1
