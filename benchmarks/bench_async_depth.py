"""Event-queue depth ablation — throughput vs ``aio_queue_depth``.

Series: the async-capable interfaces (DFS and the native DAOS array
API), IOR file-per-process at one client node — the latency-bound
regime where keeping several transfers in flight hides per-op RPC
round trips. Depth 0 is the classic blocking loop; depth 1 must match
it bit-exactly (the event-queue byte-identity invariant); deeper
queues buy bandwidth until the fabric flows saturate.
"""

from conftest import run_once

from repro.bench import async_depth_sweep, render_figure
from repro.units import GiB

DEPTHS = (0, 1, 2, 4, 8, 16)
APIS = ("DFS", "DAOS")


def test_async_queue_depth_sweep(benchmark):
    def sweep():
        return async_depth_sweep(depths=DEPTHS, apis=APIS)

    read_fig, write_fig = run_once(benchmark, sweep)
    print()
    print(render_figure(write_fig))
    print()
    print(render_figure(read_fig))

    for fig in (read_fig, write_fig):
        for series in fig.series:
            blocking = series.at(0)
            # depth 1 == blocking, bit-exact (pinned more strictly in
            # tests/eq; the sweep must reproduce it too)
            assert series.at(1) == blocking
            # the pipelining payoff: depth >= 4 beats blocking clearly
            assert series.at(4) > 1.15 * blocking, (fig.name, series.label)
            # deeper queues never fall below the blocking baseline
            for depth in DEPTHS[2:]:
                assert series.at(depth) >= blocking * 0.99

    for series in write_fig.series:
        print(f"{series.label}: depth-4 write "
              f"{series.at(4) / GiB:.2f} GiB/s vs blocking "
              f"{series.at(0) / GiB:.2f} GiB/s "
              f"({series.at(4) / series.at(0):.2f}x)")
