"""Extension E1 (the paper's stated future work): IOR through the native
DAOS array API, compared with DFS and with DFuse-based POSIX.

Expectation: DAOS-array ≥ DFS ≥ POSIX — each layer peels off namespace
and FUSE overhead.
"""

from conftest import run_once

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior
from repro.units import GiB

APIS = ("DAOS", "DFS", "POSIX")


def test_native_array_api(benchmark, bench_scale):
    nodes = min(4, max(bench_scale["node_counts"]))

    def sweep():
        out = {}
        for api in APIS:
            for fpp in (True, False):
                cluster = nextgenio(client_nodes=nodes)
                params = IorParams(
                    api=api, file_per_proc=fpp, oclass="SX",
                    block_size=bench_scale["block_size"], transfer_size="1m",
                )
                result = run_ior(cluster, params, ppn=bench_scale["ppn"])
                out[(api, fpp)] = (result.max_write_bw, result.max_read_bw)
        return out

    data = run_once(benchmark, sweep)
    print()
    print(f"{'api':>6s} {'mode':>8s} {'write GiB/s':>12s} {'read GiB/s':>12s}")
    for (api, fpp), (w, r) in data.items():
        mode = "fpp" if fpp else "shared"
        print(f"{api:>6s} {mode:>8s} {w / GiB:>12.2f} {r / GiB:>12.2f}")

    for fpp in (True, False):
        daos_w = data[("DAOS", fpp)][0]
        dfs_w = data[("DFS", fpp)][0]
        posix_w = data[("POSIX", fpp)][0]
        assert daos_w >= dfs_w * 0.97  # native API at least matches DFS
        assert dfs_w >= posix_w * 0.97  # DFS at least matches FUSE
