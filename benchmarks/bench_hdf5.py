"""HDF5 interface sweep — posix-vol vs daos-vol vs DFS, fpp + shared
collective, sync vs ``--aio-depth 4`` — at the Figure 2 point geometry.

Each cell runs one IOR invocation on a fresh 1-client nextgenio cluster
(4 MiB block, 1 MiB transfer, ppn 4, oclass SX — the pinned seed-figure
point). The headline claims the pytest entry gates:

- the native-format HDF5 fpp path stays **byte-identical** to the
  pinned pre-VOL seed figures (and so does DFS) — the VOL refactor is a
  pure seam;
- the DAOS VOL moves the HDF5 points toward DFS: ``HDF5-DAOS`` reaches
  at least 0.8x the DFS bandwidth on the matching cell and leaves the
  staging-bound native fpp path far behind;
- ``--aio-depth 4`` beats sync on every async-capable cell, including
  shared-file collective HDF5, whose aggregators now pipeline their
  cb_buffer chunks through the event queue.

Seeded end to end: ``make bench-hdf5`` runs the sweep twice and ``cmp``s
the machine-independent projections byte for byte.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.cluster import nextgenio
from repro.ior import IorParams, run_ior

#: the pinned pre-VOL seed figures for this exact geometry (see
#: tests/cache/test_cache_determinism.py SEED_FIGURES)
HDF5_FPP_SEED = (1641572949.8746657, 1876602550.7834647)
DFS_FPP_SEED = (6142348807.511658, 4306533837.826945)

DEPTH = 4
#: collective-buffering chunk small enough that one aggregator's domain
#: splits into several in-flight transfers
CB_BUFFER = "1m"

#: (api, file_per_proc, collective, aio_depth)
CELLS = (
    ("HDF5", True, False, 0),
    ("HDF5", False, True, 0),
    ("HDF5", False, True, DEPTH),
    ("HDF5-DAOS", True, False, 0),
    ("HDF5-DAOS", True, False, DEPTH),
    ("HDF5-DAOS", False, False, 0),
    ("HDF5-DAOS", False, False, DEPTH),
    ("DFS", True, False, 0),
    ("DFS", True, False, DEPTH),
    ("DFS", False, False, 0),
    ("DFS", False, False, DEPTH),
)


def _cell(api, fpp, collective, depth):
    cluster = nextgenio(client_nodes=1)
    params = IorParams(
        api=api,
        file_per_proc=fpp,
        collective=collective,
        oclass="SX",
        block_size="4m",
        transfer_size="1m",
        cb_buffer=CB_BUFFER,
        aio_queue_depth=depth,
    )
    t0 = time.perf_counter()
    result = run_ior(cluster, params, ppn=4)
    wall = time.perf_counter() - t0
    return {
        "api": api,
        "file_per_proc": fpp,
        "collective": collective,
        "aio_depth": depth,
        "write_bw": result.max_write_bw,
        "read_bw": result.max_read_bw,
        "wall_seconds": round(wall, 3),  # informational; machine-dependent
    }


def run_sweep():
    return {"sweep": [_cell(*cell) for cell in CELLS]}


def _strip_wall(cell):
    return {k: v for k, v in cell.items() if k != "wall_seconds"}


def stable_json(doc) -> str:
    """Serialisation used for the determinism gate: wall_seconds is the
    one machine-dependent field, so it is stripped before comparing."""
    pruned = {"sweep": [_strip_wall(cell) for cell in doc["sweep"]]}
    return json.dumps(pruned, sort_keys=True, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="artifacts/BENCH_hdf5.json")
    parser.add_argument(
        "--stable-out", default=None,
        help="also write the machine-independent projection (the "
             "determinism-gate bytes) to this path",
    )
    args = parser.parse_args(argv)

    doc = run_sweep()
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")
    if args.stable_out:
        with open(args.stable_out, "w") as fh:
            fh.write(stable_json(doc))
            fh.write("\n")

    print(f"wrote {args.out}: {len(doc['sweep'])} cells")
    for cell in doc["sweep"]:
        mode = "fpp" if cell["file_per_proc"] else (
            "shared-coll" if cell["collective"] else "shared"
        )
        print(f"  {cell['api']:>9} {mode:<11} depth={cell['aio_depth']}: "
              f"w {cell['write_bw'] / 1e9:6.2f} GB/s, "
              f"r {cell['read_bw'] / 1e9:6.2f} GB/s")
    return 0


# -- pytest-benchmark entry point (make bench) -------------------------------


def test_hdf5_sweep(benchmark):
    from conftest import run_once

    doc = run_once(benchmark, run_sweep)
    cells = {
        (c["api"], c["file_per_proc"], c["collective"], c["aio_depth"]): c
        for c in doc["sweep"]
    }

    # the VOL refactor is a pure seam: the native paths are byte-equal
    # to the pre-VOL pinned figures (pure float equality, no tolerance)
    native = cells[("HDF5", True, False, 0)]
    assert (native["write_bw"], native["read_bw"]) == HDF5_FPP_SEED
    dfs = cells[("DFS", True, False, 0)]
    assert (dfs["write_bw"], dfs["read_bw"]) == DFS_FPP_SEED

    # the daos-vol moves the Figure 2 HDF5 point toward DFS
    for fpp in (True, False):
        daos_vol = cells[("HDF5-DAOS", fpp, False, 0)]
        dfs_cell = cells[("DFS", fpp, False, 0)]
        assert daos_vol["write_bw"] >= 0.8 * dfs_cell["write_bw"], fpp
        assert daos_vol["read_bw"] >= 0.8 * dfs_cell["read_bw"], fpp
    # ...and leaves the staging-bound native fpp path far behind
    assert cells[("HDF5-DAOS", True, False, 0)]["write_bw"] > \
        2 * native["write_bw"]

    # async pipelining beats sync on every async-capable cell
    for api, fpp, coll in (
        ("HDF5", False, True),
        ("HDF5-DAOS", True, False),
        ("HDF5-DAOS", False, False),
        ("DFS", True, False),
        ("DFS", False, False),
    ):
        sync = cells[(api, fpp, coll, 0)]
        deep = cells[(api, fpp, coll, DEPTH)]
        assert deep["write_bw"] > sync["write_bw"], (api, fpp, coll)


if __name__ == "__main__":
    sys.exit(main())
